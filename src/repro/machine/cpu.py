"""The CPU: a machine state bound to an execution backend.

Since the program/state split, architectural state — registers, flags,
the shadow stack, the i-cache, the halt latch — lives in
:class:`~repro.machine.state.MachineState`; the per-instruction
interpretation lives in pluggable execution backends
(:mod:`repro.machine.backends`), which take a *(program, state)* pair:

* ``reference`` — the original monolithic interpreter loop, preserved
  verbatim as the semantic baseline;
* ``fast`` — per-opcode handler tables over a pre-resolved micro-op
  stream (:mod:`repro.machine.uops`), decoded once per binary.

:class:`CPU` is the thin façade that binds one state to one decoded
program under one backend: it *is* a ``MachineState`` (so every trace
hook, runtime service, and micro-op handler keeps receiving the familiar
object), plus a backend name and the classic :meth:`CPU.run` /
:meth:`CPU.step` entry points.  Callers that drive several states with
one program — the lockstep MVEE, the debugger — talk to the backend
directly instead.

Both backends are required to produce byte-identical
:class:`ExecutionResult` counters and to raise the same faults
(:class:`BoobyTrapTriggered`, :class:`GuardPageFault`, shadow-stack
violations, ...) at the same instructions; ``tests/test_backends.py`` and
the property-based equivalence suite enforce this.

Executed ``TRAP`` instructions raise :class:`BoobyTrapTriggered` — that is a
booby trap detonating (a BTRA being returned to, or a prolog trap being
reached by a mislocated gadget), not an ordinary crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MachineError
from repro.machine.costs import MachineCosts
from repro.machine.isa import Op
from repro.machine.process import Process
from repro.machine.state import MachineState
from repro.numeric import (  # re-exported for backward compatibility
    MASK64,
    SIGN_BIT,
    to_signed,
    to_unsigned,
    truncated_div,
)

__all__ = [
    "CPU",
    "ExecutionResult",
    "MachineState",
    "MASK64",
    "SIGN_BIT",
    "UNTAGGED_TAG",
    "to_signed",
    "to_unsigned",
    "truncated_div",
]

#: Attribution bucket for untagged (application) instructions.  With
#: ``attribute_tags=True`` every executed instruction lands in exactly one
#: ``tag_cycles``/``tag_counts`` bucket — diversification-emitted code
#: under its own tag, everything else here — so the buckets decompose the
#: run's total cycles and instruction count.
UNTAGGED_TAG = "app"


@dataclass
class ExecutionResult:
    """Counters and outputs from one program run.

    Every field is backend-invariant: the ``reference`` and ``fast``
    backends fill identical values (including ``opcode_counts`` and
    ``tag_cycles``) for the same program and seed.
    """

    exit_code: int = 0
    instructions: int = 0
    #: Total cycles as a float, derived from ``cycle_units`` at every
    #: flush point (one exact division — never accumulated in float, so
    #: sliced ``step()`` runs and whole runs agree bit-for-bit).
    cycles: float = 0.0
    #: Total cycles in exact integer units of 1/``CYCLE_UNIT`` cycles —
    #: the canonical accumulator all backends add into.  Integer addition
    #: is associative, which is what lets the tier-2 backend fold whole
    #: blocks of charges into single literals.
    cycle_units: int = 0
    calls: int = 0
    rets: int = 0
    branches: int = 0
    #: Branch-family instructions that redirected control flow.  A faulting
    #: indirect target is not counted (the fault wins, matching the
    #: reference loop's ordering).
    branches_taken: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    #: Instructions carrying a memory operand — the same predicate that
    #: charges ``mem_operand_extra``.
    mem_ops: int = 0
    #: Booby traps detonated (executed TRAP instructions); counted before
    #: the BoobyTrapTriggered fault propagates.
    traps: int = 0
    output: List[int] = field(default_factory=list)
    opcode_counts: Dict[Op, int] = field(default_factory=dict)
    #: Cycles attributed to instruction tags, filled when the CPU runs with
    #: ``attribute_tags=True``.  Untagged instructions land under
    #: :data:`UNTAGGED_TAG`.  Derived from ``tag_cycle_units`` at flush
    #: time; the unit buckets sum to ``cycle_units`` exactly and
    #: ``tag_counts`` sums to ``instructions`` exactly.
    tag_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per-tag cycle totals in integer units (canonical accumulator
    #: behind ``tag_cycles``).
    tag_cycle_units: Dict[str, int] = field(default_factory=dict)
    #: Per-tag executed-instruction counts (same bucketing as ``tag_cycles``).
    tag_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def icache_miss_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_misses / total if total else 0.0

    def perf_counters(self):
        """This run as a :class:`repro.obs.counters.PerfCounters` view."""
        from repro.obs.counters import PerfCounters

        return PerfCounters.from_result(self)


class CPU(MachineState):
    """One :class:`MachineState` bound to a named execution backend.

    ``backend`` selects the execution backend by name (see
    :mod:`repro.machine.backends`); the default ``"reference"`` is the
    original interpreter loop.  The decoded program is prepared lazily on
    first :meth:`run`/:meth:`step` and cached for the CPU's lifetime.
    """

    def __init__(
        self,
        process: Process,
        costs: MachineCosts,
        *,
        check_alignment: bool = True,
        instruction_budget: int = 50_000_000,
        count_opcodes: bool = False,
        trace_fn=None,
        shadow_stack: bool = False,
        attribute_tags: bool = False,
        backend: str = "reference",
    ):
        super().__init__(
            process,
            costs,
            check_alignment=check_alignment,
            instruction_budget=instruction_budget,
            count_opcodes=count_opcodes,
            trace_fn=trace_fn,
            shadow_stack=shadow_stack,
            attribute_tags=attribute_tags,
        )
        self.backend_name = backend
        self._program = None

    # -- execution ------------------------------------------------------------

    def _bind(self):
        """(backend, prepared program) for this CPU — prepared once."""
        from repro.machine.backends import get_backend

        backend = get_backend(self.backend_name)
        if self._program is None:
            self._program = backend.prepare(self)
        return backend, self._program

    def run(self, entry: Optional[int] = None, result: Optional[ExecutionResult] = None) -> ExecutionResult:
        """Run from ``entry`` (default: the process entry point) until EXIT.

        Faults (memory, booby traps, budget) propagate as exceptions; the
        partially filled ``result`` can be passed in by callers that want
        counters even when the run crashes.
        """
        backend, program = self._bind()
        if entry is None:
            entry = self.process.entry_point
        if entry is None:
            raise MachineError("process has no entry point")
        res = result if result is not None else ExecutionResult()
        self.rip = entry
        self._halted = False
        return backend.execute(program, self, res)

    def step(self, result: ExecutionResult, max_steps: int = 1) -> bool:
        """Execute up to ``max_steps`` instructions from the current ``rip``.

        Returns True once the program has halted.  Counters accumulate
        into ``result`` across calls, and a sequence of steps is
        byte-identical to one uninterrupted :meth:`run` — including the
        instruction budget, which counts ``result.instructions`` as
        already spent.  Callers start a fresh run by setting ``rip`` (or
        calling :meth:`run`); ``step`` never resets state.
        """
        backend, program = self._bind()
        return backend.step(program, self, result, max_steps)
