"""The CPU interpreter: executes decoded instructions with cycle accounting.

The interpreter is deliberately faithful on the two points the BTRA scheme
rests on (``push`` and ``call`` stack semantics — see :mod:`repro.machine.isa`)
and deliberately simple everywhere else.  It charges every instruction its
preset base cost, an extra for memory operands, and the i-cache miss
penalty for the lines its encoding occupies; this is the entire performance
model behind the Table 1 / Figure 6 reproductions.

Executed ``TRAP`` instructions raise :class:`BoobyTrapTriggered` — that is a
booby trap detonating (a BTRA being returned to, or a prolog trap being
reached by a mislocated gadget), not an ordinary crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    BoobyTrapTriggered,
    ExecutionLimitExceeded,
    InvalidInstruction,
    MachineError,
    ShadowStackViolation,
    StackMisaligned,
)
from repro.machine.costs import MachineCosts
from repro.machine.icache import ICache
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg, VECTOR_WORDS, WORD
from repro.machine.process import Process

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    return value & MASK64


def truncated_div(dividend: int, divisor: int) -> int:
    """Exact signed division truncating toward zero (C semantics)."""
    quotient = abs(dividend) // abs(divisor)
    return -quotient if (dividend < 0) != (divisor < 0) else quotient


@dataclass
class ExecutionResult:
    """Counters and outputs from one program run."""

    exit_code: int = 0
    instructions: int = 0
    cycles: float = 0.0
    calls: int = 0
    rets: int = 0
    branches: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    output: List[int] = field(default_factory=list)
    opcode_counts: Dict[Op, int] = field(default_factory=dict)
    #: Cycles attributed to tagged (diversification-emitted) instructions,
    #: filled when the CPU runs with ``attribute_tags=True``.
    tag_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def icache_miss_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_misses / total if total else 0.0


class CPU:
    """Interprets a loaded :class:`Process` under a :class:`MachineCosts` model."""

    def __init__(
        self,
        process: Process,
        costs: MachineCosts,
        *,
        check_alignment: bool = True,
        instruction_budget: int = 50_000_000,
        count_opcodes: bool = False,
        trace_fn=None,
        shadow_stack: bool = False,
        attribute_tags: bool = False,
    ):
        self.process = process
        self.costs = costs
        self.check_alignment = check_alignment
        self.instruction_budget = instruction_budget
        self.count_opcodes = count_opcodes
        #: Backward-edge CFI (Section 8.2 comparison): calls push the
        #: return address onto a protected shadow stack; a ret whose target
        #: disagrees raises ShadowStackViolation.
        self.shadow_stack_enabled = shadow_stack
        self.shadow_stack: List[int] = []
        #: Attribute cycles to instruction tags (overhead decomposition).
        self.attribute_tags = attribute_tags
        #: Optional per-instruction hook ``trace_fn(cpu, rip, instr)``,
        #: called before execution.  Debugging/analysis only (it sees the
        #: machine state the instruction will observe).
        self.trace_fn = trace_fn
        self.icache = ICache(costs.icache_size, costs.icache_line, costs.icache_ways)
        self.regs: List[int] = [0] * 16
        self.regs[Reg.RSP] = process.layout.stack_top & ~0xF
        self.vregs: List[bytes] = [bytes(32)] * 4
        self.rip = 0
        self._cmp = 0  # signed result of the last CMP/TEST
        self._halted = False
        self._exit_code = 0

    # -- register access ----------------------------------------------------

    def get_reg(self, reg: Reg) -> int:
        return self.regs[reg]

    def set_reg(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value & MASK64

    # -- operand evaluation -------------------------------------------------

    def _mem_address(self, operand: Mem) -> int:
        addr = operand.offset
        if operand.base is not None:
            addr += self.regs[operand.base]
        if operand.index is not None:
            addr += self.regs[operand.index] * operand.scale
        return addr & MASK64

    def _read_operand(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                raise InvalidInstruction(f"unresolved symbol {operand.symbol!r} at runtime")
            return operand.value & MASK64
        if isinstance(operand, Mem):
            return self.process.memory.read_word(self._mem_address(operand))
        raise InvalidInstruction(f"cannot read operand {operand!r}")

    def _write_operand(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.regs[operand] = value & MASK64
        elif isinstance(operand, Mem):
            self.process.memory.write_word(self._mem_address(operand), value)
        else:
            raise InvalidInstruction(f"cannot write operand {operand!r}")

    # -- execution ------------------------------------------------------------

    def run(self, entry: Optional[int] = None, result: Optional[ExecutionResult] = None) -> ExecutionResult:
        """Run from ``entry`` (default: the process entry point) until EXIT.

        Faults (memory, booby traps, budget) propagate as exceptions; the
        partially filled ``result`` can be passed in by callers that want
        counters even when the run crashes.
        """
        if entry is None:
            entry = self.process.entry_point
        if entry is None:
            raise MachineError("process has no entry point")
        res = result if result is not None else ExecutionResult()
        self.rip = entry
        self._halted = False

        # Local bindings for the hot loop.
        instructions = self.process.instructions
        op_costs = self.costs.op_costs
        mem_extra = self.costs.mem_operand_extra
        miss_penalty = self.costs.icache_miss_penalty
        icache_access = self.icache.access
        regs = self.regs
        memory = self.process.memory
        budget = self.instruction_budget
        count_ops = self.count_opcodes
        shadow = self.shadow_stack if self.shadow_stack_enabled else None
        attribute = self.attribute_tags
        tag_cycles = res.tag_cycles

        executed = 0
        cycles = 0.0
        calls = 0
        rets = 0
        branches = 0

        try:
            while not self._halted:
                rip = self.rip
                instr = instructions.get(rip)
                if instr is None:
                    memory.fetch_check(rip)
                    raise InvalidInstruction(f"no instruction at {rip:#x}")
                memory.fetch_check(rip, instr.size)

                executed += 1
                if executed > budget:
                    raise ExecutionLimitExceeded(f"budget of {budget} instructions exceeded")

                if self.trace_fn is not None:
                    self.trace_fn(self, rip, instr)

                op = instr.op
                cost = op_costs[op]
                misses = icache_access(rip, instr.size)
                if misses:
                    cost += misses * miss_penalty
                if isinstance(instr.a, Mem) or isinstance(instr.b, Mem):
                    cost += mem_extra
                cycles += cost
                if attribute and instr.tag is not None:
                    tag_cycles[instr.tag] = tag_cycles.get(instr.tag, 0.0) + cost
                if count_ops:
                    res.opcode_counts[op] = res.opcode_counts.get(op, 0) + 1

                next_rip = rip + instr.size

                if op is Op.MOV:
                    self._write_operand(instr.a, self._read_operand(instr.b))
                elif op is Op.PUSH:
                    rsp = (regs[Reg.RSP] - WORD) & MASK64
                    regs[Reg.RSP] = rsp
                    memory.write_word(rsp, self._read_operand(instr.a))
                elif op is Op.POP:
                    rsp = regs[Reg.RSP]
                    self._write_operand(instr.a, memory.read_word(rsp))
                    regs[Reg.RSP] = (rsp + WORD) & MASK64
                elif op is Op.ADD:
                    self._write_operand(
                        instr.a, self._read_operand(instr.a) + self._read_operand(instr.b)
                    )
                elif op is Op.SUB:
                    self._write_operand(
                        instr.a, self._read_operand(instr.a) - self._read_operand(instr.b)
                    )
                elif op is Op.IMUL:
                    self._write_operand(
                        instr.a,
                        to_signed(self._read_operand(instr.a)) * to_signed(self._read_operand(instr.b)),
                    )
                elif op is Op.IDIV:
                    divisor = to_signed(self._read_operand(instr.b))
                    if divisor == 0:
                        raise MachineError(f"division by zero at {rip:#x}")
                    dividend = to_signed(self._read_operand(instr.a))
                    self._write_operand(instr.a, truncated_div(dividend, divisor))
                elif op is Op.AND:
                    self._write_operand(
                        instr.a, self._read_operand(instr.a) & self._read_operand(instr.b)
                    )
                elif op is Op.OR:
                    self._write_operand(
                        instr.a, self._read_operand(instr.a) | self._read_operand(instr.b)
                    )
                elif op is Op.XOR:
                    self._write_operand(
                        instr.a, self._read_operand(instr.a) ^ self._read_operand(instr.b)
                    )
                elif op is Op.SHL:
                    self._write_operand(
                        instr.a, self._read_operand(instr.a) << (self._read_operand(instr.b) & 63)
                    )
                elif op is Op.SHR:
                    self._write_operand(
                        instr.a, (self._read_operand(instr.a) & MASK64) >> (self._read_operand(instr.b) & 63)
                    )
                elif op is Op.NEG:
                    self._write_operand(instr.a, -self._read_operand(instr.a))
                elif op is Op.LEA:
                    if not isinstance(instr.b, Mem):
                        raise InvalidInstruction("lea requires a memory operand")
                    self._write_operand(instr.a, self._mem_address(instr.b))
                elif op is Op.CMP:
                    self._cmp = to_signed(self._read_operand(instr.a)) - to_signed(
                        self._read_operand(instr.b)
                    )
                elif op is Op.TEST:
                    self._cmp = to_signed(
                        self._read_operand(instr.a) & self._read_operand(instr.b)
                    )
                elif op is Op.SETE:
                    self._write_operand(instr.a, 1 if self._cmp == 0 else 0)
                elif op is Op.SETNE:
                    self._write_operand(instr.a, 1 if self._cmp != 0 else 0)
                elif op is Op.SETL:
                    self._write_operand(instr.a, 1 if self._cmp < 0 else 0)
                elif op is Op.SETLE:
                    self._write_operand(instr.a, 1 if self._cmp <= 0 else 0)
                elif op is Op.SETG:
                    self._write_operand(instr.a, 1 if self._cmp > 0 else 0)
                elif op is Op.SETGE:
                    self._write_operand(instr.a, 1 if self._cmp >= 0 else 0)
                elif op is Op.JMP:
                    next_rip = self._branch_target(instr.a)
                    branches += 1
                elif op is Op.JE:
                    branches += 1
                    if self._cmp == 0:
                        next_rip = self._branch_target(instr.a)
                elif op is Op.JNE:
                    branches += 1
                    if self._cmp != 0:
                        next_rip = self._branch_target(instr.a)
                elif op is Op.JL:
                    branches += 1
                    if self._cmp < 0:
                        next_rip = self._branch_target(instr.a)
                elif op is Op.JLE:
                    branches += 1
                    if self._cmp <= 0:
                        next_rip = self._branch_target(instr.a)
                elif op is Op.JG:
                    branches += 1
                    if self._cmp > 0:
                        next_rip = self._branch_target(instr.a)
                elif op is Op.JGE:
                    branches += 1
                    if self._cmp >= 0:
                        next_rip = self._branch_target(instr.a)
                elif op is Op.CALL:
                    if self.check_alignment and regs[Reg.RSP] % 16 != 0:
                        raise StackMisaligned(
                            f"rsp={regs[Reg.RSP]:#x} not 16-byte aligned at call ({rip:#x})"
                        )
                    target = self._branch_target(instr.a)
                    rsp = (regs[Reg.RSP] - WORD) & MASK64
                    regs[Reg.RSP] = rsp
                    memory.write_word(rsp, next_rip)
                    if shadow is not None:
                        shadow.append(next_rip)
                    next_rip = target
                    calls += 1
                elif op is Op.RET:
                    rsp = regs[Reg.RSP]
                    next_rip = memory.read_word(rsp)
                    regs[Reg.RSP] = (rsp + WORD) & MASK64
                    if shadow is not None:
                        expected = shadow.pop() if shadow else 0
                        if expected != next_rip:
                            raise ShadowStackViolation(expected, next_rip)
                    rets += 1
                elif op is Op.NOP:
                    pass
                elif op is Op.TRAP:
                    raise BoobyTrapTriggered(rip)
                elif op is Op.VLOAD or op is Op.VLOAD512:
                    if not isinstance(instr.b, Mem):
                        raise InvalidInstruction("vload requires a memory source")
                    nbytes = WORD * (VECTOR_WORDS if op is Op.VLOAD else 2 * VECTOR_WORDS)
                    data = memory.read(self._mem_address(instr.b), nbytes)
                    self.vregs[instr.a - Reg.YMM0] = data
                elif op is Op.VSTORE or op is Op.VSTORE512:
                    if not isinstance(instr.a, Mem):
                        raise InvalidInstruction("vstore requires a memory destination")
                    memory.write(self._mem_address(instr.a), self.vregs[instr.b - Reg.YMM0])
                elif op is Op.VZEROUPPER:
                    pass
                elif op is Op.CALLRT:
                    if not isinstance(instr.a, Imm) or instr.a.symbol is None:
                        raise InvalidInstruction("callrt requires a service name")
                    fn = self.process.service(instr.a.symbol)
                    regs[Reg.RAX] = fn(self.process, self) & MASK64
                elif op is Op.OUT:
                    self.process.output.append(self._read_operand(instr.a))
                elif op is Op.EXIT:
                    self._exit_code = self._read_operand(instr.a) if instr.a is not None else 0
                    self._halted = True
                else:  # pragma: no cover - exhaustive over Op
                    raise InvalidInstruction(f"unimplemented opcode {op}")

                self.rip = next_rip
        finally:
            res.instructions += executed
            res.cycles += cycles
            res.calls += calls
            res.rets += rets
            res.branches += branches
            res.icache_hits = self.icache.hits
            res.icache_misses = self.icache.misses
            res.output = self.process.output

        res.exit_code = self._exit_code
        self.process.exit_code = self._exit_code
        return res

    def _branch_target(self, operand) -> int:
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                raise InvalidInstruction(f"unresolved branch target {operand.symbol!r}")
            return operand.value & MASK64
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Mem):
            return self.process.memory.read_word(self._mem_address(operand))
        raise InvalidInstruction(f"bad branch target {operand!r}")
