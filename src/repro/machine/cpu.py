"""The CPU: architectural state, operand evaluation, and backend dispatch.

Since the fetch/decode/execute split, this module owns the *state* of the
machine — registers, flags, the shadow stack, the i-cache, the result
counters — while the per-instruction interpretation lives in pluggable
execution backends (:mod:`repro.machine.backends`):

* ``reference`` — the original monolithic interpreter loop, preserved
  verbatim as the semantic baseline;
* ``fast`` — per-opcode handler tables over a pre-resolved micro-op
  stream (:mod:`repro.machine.uops`), decoded once per binary.

Both backends are required to produce byte-identical
:class:`ExecutionResult` counters and to raise the same faults
(:class:`BoobyTrapTriggered`, :class:`GuardPageFault`, shadow-stack
violations, ...) at the same instructions; ``tests/test_backends.py`` and
the property-based equivalence suite enforce this.

Executed ``TRAP`` instructions raise :class:`BoobyTrapTriggered` — that is a
booby trap detonating (a BTRA being returned to, or a prolog trap being
reached by a mislocated gadget), not an ordinary crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InvalidInstruction, MachineError
from repro.machine.costs import MachineCosts
from repro.machine.icache import ICache
from repro.machine.isa import Imm, Mem, Op, Reg
from repro.machine.process import Process
from repro.numeric import (  # re-exported for backward compatibility
    MASK64,
    SIGN_BIT,
    to_signed,
    to_unsigned,
    truncated_div,
)

__all__ = [
    "CPU",
    "ExecutionResult",
    "MASK64",
    "SIGN_BIT",
    "UNTAGGED_TAG",
    "to_signed",
    "to_unsigned",
    "truncated_div",
]

#: Attribution bucket for untagged (application) instructions.  With
#: ``attribute_tags=True`` every executed instruction lands in exactly one
#: ``tag_cycles``/``tag_counts`` bucket — diversification-emitted code
#: under its own tag, everything else here — so the buckets decompose the
#: run's total cycles and instruction count.
UNTAGGED_TAG = "app"


@dataclass
class ExecutionResult:
    """Counters and outputs from one program run.

    Every field is backend-invariant: the ``reference`` and ``fast``
    backends fill identical values (including ``opcode_counts`` and
    ``tag_cycles``) for the same program and seed.
    """

    exit_code: int = 0
    instructions: int = 0
    cycles: float = 0.0
    calls: int = 0
    rets: int = 0
    branches: int = 0
    #: Branch-family instructions that redirected control flow.  A faulting
    #: indirect target is not counted (the fault wins, matching the
    #: reference loop's ordering).
    branches_taken: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    #: Instructions carrying a memory operand — the same predicate that
    #: charges ``mem_operand_extra``.
    mem_ops: int = 0
    #: Booby traps detonated (executed TRAP instructions); counted before
    #: the BoobyTrapTriggered fault propagates.
    traps: int = 0
    output: List[int] = field(default_factory=list)
    opcode_counts: Dict[Op, int] = field(default_factory=dict)
    #: Cycles attributed to instruction tags, filled when the CPU runs with
    #: ``attribute_tags=True``.  Untagged instructions land under
    #: :data:`UNTAGGED_TAG`, so the buckets sum to ``cycles`` (up to float
    #: re-association) and ``tag_counts`` sums to ``instructions`` exactly.
    tag_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per-tag executed-instruction counts (same bucketing as ``tag_cycles``).
    tag_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def icache_miss_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_misses / total if total else 0.0

    def perf_counters(self):
        """This run as a :class:`repro.obs.counters.PerfCounters` view."""
        from repro.obs.counters import PerfCounters

        return PerfCounters.from_result(self)


class CPU:
    """Machine state for one run of a :class:`Process` under a cost model.

    ``backend`` selects the execution backend by name (see
    :mod:`repro.machine.backends`); the default ``"reference"`` is the
    original interpreter loop.
    """

    def __init__(
        self,
        process: Process,
        costs: MachineCosts,
        *,
        check_alignment: bool = True,
        instruction_budget: int = 50_000_000,
        count_opcodes: bool = False,
        trace_fn=None,
        shadow_stack: bool = False,
        attribute_tags: bool = False,
        backend: str = "reference",
    ):
        self.process = process
        self.costs = costs
        self.check_alignment = check_alignment
        self.instruction_budget = instruction_budget
        self.count_opcodes = count_opcodes
        #: Backward-edge CFI (Section 8.2 comparison): calls push the
        #: return address onto a protected shadow stack; a ret whose target
        #: disagrees raises ShadowStackViolation.
        self.shadow_stack_enabled = shadow_stack
        self.shadow_stack: List[int] = []
        #: Attribute cycles to instruction tags (overhead decomposition).
        self.attribute_tags = attribute_tags
        #: Optional per-instruction hook ``trace_fn(cpu, rip, instr)``,
        #: called before execution.  Debugging/analysis only (it sees the
        #: machine state the instruction will observe).
        self.trace_fn = trace_fn
        self.backend_name = backend
        self.icache = ICache(costs.icache_size, costs.icache_line, costs.icache_ways)
        self.regs: List[int] = [0] * 16
        self.regs[Reg.RSP] = process.layout.stack_top & ~0xF
        self.vregs: List[bytes] = [bytes(32)] * 4
        self.rip = 0
        self._cmp = 0  # signed result of the last CMP/TEST
        self._halted = False
        self._exit_code = 0

    # -- register access ----------------------------------------------------

    def get_reg(self, reg: Reg) -> int:
        return self.regs[reg]

    def set_reg(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value & MASK64

    # -- operand evaluation -------------------------------------------------

    def _mem_address(self, operand: Mem) -> int:
        addr = operand.offset
        if operand.base is not None:
            addr += self.regs[operand.base]
        if operand.index is not None:
            addr += self.regs[operand.index] * operand.scale
        return addr & MASK64

    def _read_operand(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                raise InvalidInstruction(f"unresolved symbol {operand.symbol!r} at runtime")
            return operand.value & MASK64
        if isinstance(operand, Mem):
            return self.process.memory.read_word(self._mem_address(operand))
        raise InvalidInstruction(f"cannot read operand {operand!r}")

    def _write_operand(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.regs[operand] = value & MASK64
        elif isinstance(operand, Mem):
            self.process.memory.write_word(self._mem_address(operand), value)
        else:
            raise InvalidInstruction(f"cannot write operand {operand!r}")

    # -- execution ------------------------------------------------------------

    def run(self, entry: Optional[int] = None, result: Optional[ExecutionResult] = None) -> ExecutionResult:
        """Run from ``entry`` (default: the process entry point) until EXIT.

        Faults (memory, booby traps, budget) propagate as exceptions; the
        partially filled ``result`` can be passed in by callers that want
        counters even when the run crashes.
        """
        from repro.machine.backends import get_backend

        if entry is None:
            entry = self.process.entry_point
        if entry is None:
            raise MachineError("process has no entry point")
        res = result if result is not None else ExecutionResult()
        self.rip = entry
        self._halted = False
        return get_backend(self.backend_name).execute(self, res)

    def _branch_target(self, operand) -> int:
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                raise InvalidInstruction(f"unresolved branch target {operand.symbol!r}")
            return operand.value & MASK64
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Mem):
            return self.process.memory.read_word(self._mem_address(operand))
        raise InvalidInstruction(f"bad branch target {operand!r}")
