"""Tier 1 of the progressive-lowering pipeline: basic blocks + fusion.

The machine layer lowers guest code through four tiers:

* **tier 0** — the decoded, bound micro-op table
  (:class:`repro.machine.uops.BoundProgram`), the terminal form the
  ``fast`` backend drives directly;
* **tier 1** (this module) — a recovered basic-block CFG over the
  micro-op stream, with hot adjacent micro-ops fused into
  *superinstructions* (compare-and-branch pairs, push runs);
* **tier 2** (:mod:`repro.machine.jit`) — one ``exec``-compiled Python
  function per block, threaded together by direct jumps;
* **tier 3** (:mod:`repro.machine.jit`) — hot loop heads (backward
  direct-branch targets, :func:`backward_branch_target`) record the
  block path control takes through them, which is glued into one trace
  function: a loop trace when the path closes back on its head,
  otherwise a superblock with guard-protected side exits.

Tier 1's contract: block boundaries are **stable** — derived only from
addresses, sizes, and direct branch targets, all fixed at bind time —
and every block is a maximal straight-line run: entered only at its
head, left only at its final micro-op.  A block's *tier* records how far
down the pipeline it got: blocks whose every micro-op has a specialized
handler template lower to tier 2; blocks containing generic-fallback
handlers (symbolic immediates, indexed memory operands, malformed
operands) stay at tier 1 and execute on the ``fast`` interpreter via the
jit backend's deopt path.

Fusion never changes semantics, counters, or fault behaviour — a fused
pair still charges two instructions, two costs (in the reference float
order), and stores ``cpu._cmp`` for later SETcc readers.  What it
removes is re-materialization: the compare result forwards to its
branch in a local instead of round-tripping through machine state, and
a push run reads the stack pointer once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.machine.isa import Imm, Op
from repro.machine.uops import GENERIC, BoundProgram, MicroOp, TERMINATOR_OPS
from repro.numeric import MASK64

__all__ = [
    "BasicBlock",
    "BlockProgram",
    "recover_blocks",
    "fuse_blocks",
    "slice_block",
    "fuse_slice",
    "backward_branch_target",
    "FUSABLE_COMPARES",
    "FUSABLE_BRANCHES",
]

#: First halves of a fused compare-and-branch superinstruction.
FUSABLE_COMPARES = frozenset({Op.CMP, Op.TEST})

#: Second halves: the conditional branches reading ``cpu._cmp``.
FUSABLE_BRANCHES = frozenset({Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE})


class BasicBlock:
    """One recovered straight-line run of micro-ops."""

    __slots__ = ("bid", "addr", "uops", "tier", "fused", "reason")

    def __init__(self, bid: int, uops: List[MicroOp]):
        self.bid = bid
        self.addr = uops[0].rip
        self.uops = uops
        #: 2 when every micro-op lowered to compiled code, else 1.
        self.tier = 1
        #: Fusion annotations: (kind, first uop index, micro-op count).
        self.fused: List[Tuple[str, int, int]] = []
        #: Why the block stopped at tier 1 (None for tier-2 blocks).
        self.reason: Optional[str] = None

    def __len__(self) -> int:
        return len(self.uops)

    @property
    def end(self) -> int:
        """Address one past the last micro-op."""
        return self.uops[-1].next_rip

    @property
    def terminator(self) -> MicroOp:
        return self.uops[-1]

    def successors(self) -> List[Tuple[str, Optional[int]]]:
        """Static successor edges as (kind, address-or-None) pairs.

        ``None`` addresses are computed at run time (indirect jumps,
        returns).  Fall-through past a non-terminator block end (a
        straight-line block split by an incoming branch target) is a
        plain ``fall`` edge.
        """
        last = self.uops[-1]
        op = last.op
        target = last.target
        taken = target.rip if isinstance(target, MicroOp) else (
            target if isinstance(target, int) else None
        )
        if op is Op.JMP:
            return [("jump", taken)]
        if op in FUSABLE_BRANCHES:
            return [("taken", taken), ("fall", last.next_rip)]
        if op is Op.CALL:
            return [("call", taken), ("return-site", last.next_rip)]
        if op is Op.RET:
            return [("ret", None)]
        if op is Op.EXIT:
            return []
        if op is Op.TRAP:
            return [("trap", None)]
        # CALLRT and blocks split by an incoming edge fall through.
        return [("fall", last.next_rip)]


class BlockProgram:
    """The tier-1 form: a block list plus per-address lookup tables."""

    __slots__ = ("blocks", "by_addr", "steps_to_end", "bound")

    def __init__(self, blocks: List[BasicBlock], bound: BoundProgram):
        self.blocks = blocks
        self.bound = bound
        #: Block-head address -> block.
        self.by_addr: Dict[int, BasicBlock] = {b.addr: b for b in blocks}
        #: Any instruction address -> micro-op count from there through
        #: its block's terminator.  The jit driver uses this to run a
        #: mid-block entry (debugger resume, BTRA-displaced return) on
        #: the fast interpreter for *exactly* the residue of the block.
        self.steps_to_end: Dict[int, int] = {}
        for block in blocks:
            span = len(block.uops)
            for position, u in enumerate(block.uops):
                self.steps_to_end[u.rip] = span - position

    def stats(self) -> Dict[str, int]:
        tier2 = sum(1 for b in self.blocks if b.tier == 2)
        return {
            "blocks": len(self.blocks),
            "tier2_blocks": tier2,
            "tier1_blocks": len(self.blocks) - tier2,
            "superinstructions_fused": sum(len(b.fused) for b in self.blocks),
        }


def _is_generic(u: MicroOp) -> bool:
    """True when the micro-op fell back to its generic (reference-
    semantics) handler at bind time — the tier-2 disqualifier."""
    return u.handler is GENERIC.get(u.op)


def recover_blocks(
    program: BoundProgram,
    *,
    compilable: Optional[Callable[[MicroOp], bool]] = None,
) -> BlockProgram:
    """Recover the basic-block CFG of a bound program.

    Leaders are: the first micro-op, every direct branch target, and
    every instruction following a terminator.  Non-contiguous address
    runs (hand-assembled processes with gaps) also split, so the
    in-block invariant ``uops[k].next_u is uops[k+1]`` always holds.

    ``compilable`` decides per micro-op whether tier 2 can lower it
    (defaults to "has a specialized handler"); a block is tier 2 iff
    every micro-op qualifies.
    """
    order = program.order
    if compilable is None:
        compilable = lambda u: not _is_generic(u)  # noqa: E731
    leaders = set()
    if order:
        leaders.add(order[0].rip)
    for u in order:
        if isinstance(u.target, MicroOp):
            leaders.add(u.target.rip)
        if u.op in TERMINATOR_OPS and u.next_u is not None:
            leaders.add(u.next_rip)

    blocks: List[BasicBlock] = []
    current: List[MicroOp] = []

    def close() -> None:
        if current:
            blocks.append(BasicBlock(len(blocks), list(current)))
            current.clear()

    previous: Optional[MicroOp] = None
    for u in order:
        if current and (
            u.rip in leaders
            or previous is None
            or previous.next_u is not u
        ):
            close()
        current.append(u)
        previous = u
        if u.op in TERMINATOR_OPS:
            close()
            previous = None
    close()

    for block in blocks:
        bad = next((u for u in block.uops if not compilable(u)), None)
        if bad is None:
            block.tier = 2
        else:
            block.tier = 1
            block.reason = f"generic handler for {bad.op.name} at {bad.rip:#x}"
    fuse_blocks(blocks)
    return BlockProgram(blocks, program)


def slice_block(instructions, addr: int, limit: int = 256) -> List[tuple]:
    """The straight-line run from ``addr`` through its terminator.

    ``instructions`` is a process's decoded instruction index (address ->
    :class:`~repro.machine.isa.Instruction`).  The slice stops at the
    first :data:`TERMINATOR_OPS` member, at an address with no decoded
    instruction (the caller's fault path takes over), or at ``limit``
    instructions (a bound on single lowering units, not a semantic
    boundary — execution simply re-enters the pipeline at the cut).

    Unlike :func:`recover_blocks` this needs no leader analysis: the
    tier-2 promoter lowers the *dynamic* run from wherever control
    actually entered, so a BTRA-displaced landing mid-block gets its own
    slice rather than a misaligned CFG node.
    """
    items = []
    get = instructions.get
    while len(items) < limit:
        instr = get(addr)
        if instr is None:
            break
        items.append((addr, instr))
        if instr.op in TERMINATOR_OPS:
            break
        addr += instr.size
    return items


#: Branches whose backward form signals a loop back edge (direct jumps
#: and the conditional family; calls never close loops).
_BACKWARD_BRANCH_OPS = frozenset(
    {Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE}
)


def backward_branch_target(items: List[tuple]) -> Optional[int]:
    """Loop-header candidate of one slice, or None.

    A slice whose final instruction is a direct branch to an address at
    or before itself is a loop back edge by construction (guest code is
    static; nothing else re-enters earlier text repeatedly).  The tier-3
    trace recorder (:mod:`repro.machine.jit`) arms exactly these targets
    for recording.
    """
    if not items:
        return None
    addr, instr = items[-1]
    if instr.op not in _BACKWARD_BRANCH_OPS:
        return None
    a = instr.a
    if not isinstance(a, Imm) or a.symbol is not None:
        return None
    target = a.value & MASK64
    return target if target <= addr else None


def fuse_slice(items: List[tuple]) -> List[Tuple[str, int, int]]:
    """Superinstruction annotations for an instruction slice.

    Same patterns and annotation format as :func:`fuse_blocks` —
    ``cmp+jcc`` forwarding and ``push-run`` sharing — computed from
    ``(address, instruction)`` pairs instead of bound micro-ops, so the
    tier-2 promoter can fuse lazily sliced blocks without a tier-0 bind.
    """
    fused: List[Tuple[str, int, int]] = []
    count = len(items)
    if (
        count >= 2
        and items[-2][1].op in FUSABLE_COMPARES
        and items[-1][1].op in FUSABLE_BRANCHES
    ):
        fused.append(("cmp+jcc", count - 2, 2))
    position = 0
    while position < count:
        if items[position][1].op is Op.PUSH:
            run = position
            while run < count and items[run][1].op is Op.PUSH:
                run += 1
            if run - position >= 2:
                fused.append(("push-run", position, run - position))
            position = run
        else:
            position += 1
    return fused


def fuse_blocks(blocks: List[BasicBlock]) -> int:
    """Annotate fusable superinstructions in tier-2 blocks.

    Two patterns, both exploited by the tier-2 code generator:

    * ``cmp+jcc`` / ``test+jcc`` — the compare's result forwards to the
      branch in a local (the store to ``cpu._cmp`` still happens, since
      later SETcc micro-ops and snapshots read it);
    * ``push-run`` — N >= 2 consecutive register/immediate pushes share
      one stack-pointer read (each push still updates RSP *before* its
      store, so a faulting push mid-run leaves the exact interpreter
      state).

    Returns the number of superinstructions annotated.
    """
    fused = 0
    for block in blocks:
        block.fused = []
        if block.tier != 2:
            continue
        uops = block.uops
        count = len(uops)
        if (
            count >= 2
            and uops[-2].op in FUSABLE_COMPARES
            and uops[-1].op in FUSABLE_BRANCHES
        ):
            block.fused.append(("cmp+jcc", count - 2, 2))
        position = 0
        while position < count:
            if uops[position].op is Op.PUSH:
                run = position
                while run < count and uops[run].op is Op.PUSH:
                    run += 1
                if run - position >= 2:
                    block.fused.append(("push-run", position, run - position))
                position = run
            else:
                position += 1
        fused += len(block.fused)
    return fused
