"""Simulated x86-64-style machine: memory, ISA, CPU, process image.

This package is the hardware/OS substrate the paper's LLVM prototype
assumes.  It provides:

* :mod:`repro.machine.memory` — paged virtual memory with R/W/X permissions,
  execute-only pages, and guard pages (the mechanism behind BTDPs).
* :mod:`repro.machine.isa` — the instruction set the toolchain targets,
  including ``push``/``call``/``ret`` with x86 semantics (a ``call``
  overwrites the word at the new stack-pointer position, which the BTRA
  setup sequence of Section 5.1 relies on) and AVX2-style batched stores.
* :mod:`repro.machine.icache` / :mod:`repro.machine.costs` — the cycle cost
  model, including an instruction-cache simulator that reproduces why the
  push-based BTRA setup is slower than the AVX2 one (Section 6.2.1).
* :mod:`repro.machine.state` — :class:`MachineState`, the architectural
  state (registers, flags, shadow stack, i-cache) as a first-class,
  snapshot-able value; one decoded program can drive N states.
* :mod:`repro.machine.cpu` — the classic ``CPU`` façade: one state bound
  to one decoded program under a named backend, with cycle/call
  accounting in :class:`ExecutionResult`.
* :mod:`repro.machine.uops` / :mod:`repro.machine.backends` — the
  fetch/decode/execute pipeline: binaries are decoded once into
  pre-resolved micro-ops (cached by content fingerprint) and driven by
  either the ``reference`` interpreter loop or the ``fast`` handler-table
  backend, with byte-identical results.
* :mod:`repro.machine.process` — the process image with ASLR over text,
  data, heap and stack regions.
* :mod:`repro.machine.loader` — maps a linked binary into a process.
"""

from repro.machine.memory import Memory, Perm, PAGE_SIZE
from repro.machine.isa import (
    Imm,
    Instruction,
    Label,
    Mem,
    Op,
    Reg,
    WORD,
)
from repro.machine.costs import MachineCosts, MACHINE_PRESETS
from repro.machine.icache import ICache
from repro.machine.state import MachineState
from repro.machine.cpu import CPU, ExecutionResult
from repro.machine.backends import (
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.machine.process import AddressSpaceLayout, Process
from repro.machine.loader import load_binary

__all__ = [
    "Memory",
    "Perm",
    "PAGE_SIZE",
    "WORD",
    "Op",
    "Reg",
    "Imm",
    "Mem",
    "Label",
    "Instruction",
    "MachineCosts",
    "MACHINE_PRESETS",
    "ICache",
    "MachineState",
    "CPU",
    "ExecutionResult",
    "ExecutionBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "AddressSpaceLayout",
    "Process",
    "load_binary",
]
