"""The instruction set targeted by the toolchain.

The ISA is a pragmatic model of the x86-64 subset R2C's code generator
manipulates.  Two properties of real x86 are preserved exactly, because the
BTRA setup sequence of Section 5.1 depends on them:

* ``push`` decrements ``rsp`` by 8 and stores at the new ``rsp``;
* ``call`` decrements ``rsp`` by 8, stores the return address at the new
  ``rsp``, and transfers control.  Because the caller repositions ``rsp``
  *above* the already-pushed return-address slot before the ``call``, the
  ``call`` instruction overwrites that slot in place — all addresses hit
  the stack in step (1) and never change afterwards, closing the race
  window discussed in Section 5.1.

Instructions carry an encoded byte size.  Sizes drive both the address
layout of the text section (so leaked code pointers have realistic values)
and the instruction-cache cost model (so a 12-``push`` BTRA setup really
is hungrier than the 7-instruction AVX2 one).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple, Union

WORD = 8
VECTOR_WORDS = 4  # a 256-bit ymm register holds four 64-bit words


class Reg(enum.IntEnum):
    """Architectural registers.  GPRs 0..15 mirror x86-64, ymm0..3 follow."""

    RAX = 0
    RBX = 1
    RCX = 2
    RDX = 3
    RSI = 4
    RDI = 5
    RBP = 6
    RSP = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15
    YMM0 = 16
    YMM1 = 17
    YMM2 = 18
    YMM3 = 19


GPRS = tuple(Reg(i) for i in range(16))
VECTOR_REGS = (Reg.YMM0, Reg.YMM1, Reg.YMM2, Reg.YMM3)

#: Registers the register allocator may hand out to program values.
#: rsp/rbp are reserved for stack management; rax/rdx for returns and
#: scratch; rdi/rsi/rdx/rcx/r8/r9 double as argument registers, matching
#: the System V convention modelled in :mod:`repro.toolchain.callconv`.
ALLOCATABLE_GPRS = (
    Reg.RBX,
    Reg.RCX,
    Reg.RSI,
    Reg.RDI,
    Reg.R8,
    Reg.R9,
    Reg.R10,
    Reg.R11,
    Reg.R12,
    Reg.R13,
    Reg.R14,
    Reg.R15,
)


class Imm:
    """Immediate operand.  ``symbol`` marks a link-time relocation."""

    __slots__ = ("value", "symbol")

    def __init__(self, value: int = 0, symbol: Optional[str] = None):
        self.value = value
        self.symbol = symbol

    def __repr__(self) -> str:
        if self.symbol is not None:
            return f"Imm({self.symbol}{self.value:+#x})" if self.value else f"Imm({self.symbol})"
        return f"Imm({self.value:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Imm)
            and self.value == other.value
            and self.symbol == other.symbol
        )

    def __hash__(self) -> int:
        return hash((self.value, self.symbol))


class Mem:
    """Memory operand: ``[base + index*scale + offset]``.

    ``symbol`` requests link-time materialization of an absolute address
    into ``offset`` (base must then be None) — the model's stand-in for
    RIP-relative addressing of globals and the GOT.
    """

    __slots__ = ("base", "offset", "index", "scale", "symbol")

    def __init__(
        self,
        base: Optional[Reg] = None,
        offset: int = 0,
        index: Optional[Reg] = None,
        scale: int = 1,
        symbol: Optional[str] = None,
    ):
        self.base = base
        self.offset = offset
        self.index = index
        self.scale = scale
        self.symbol = symbol

    def __repr__(self) -> str:
        parts = []
        if self.symbol:
            parts.append(self.symbol)
        if self.base is not None:
            parts.append(self.base.name.lower())
        if self.index is not None:
            parts.append(f"{self.index.name.lower()}*{self.scale}")
        if self.offset or not parts:
            parts.append(f"{self.offset:#x}")
        return f"Mem[{'+'.join(parts)}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mem)
            and self.base == other.base
            and self.offset == other.offset
            and self.index == other.index
            and self.scale == other.scale
            and self.symbol == other.symbol
        )

    def __hash__(self) -> int:
        return hash((self.base, self.offset, self.index, self.scale, self.symbol))


class Label:
    """A pre-link branch target, local to one function."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Label({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Label) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


Operand = Union[Reg, Imm, Mem, Label]


class Op(enum.Enum):
    """Opcodes."""

    MOV = "mov"
    LEA = "lea"
    PUSH = "push"
    POP = "pop"
    ADD = "add"
    SUB = "sub"
    IMUL = "imul"
    IDIV = "idiv"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    CMP = "cmp"
    TEST = "test"
    SETE = "sete"
    SETNE = "setne"
    SETL = "setl"
    SETLE = "setle"
    SETG = "setg"
    SETGE = "setge"
    JMP = "jmp"
    JE = "je"
    JNE = "jne"
    JL = "jl"
    JLE = "jle"
    JG = "jg"
    JGE = "jge"
    CALL = "call"
    RET = "ret"
    NOP = "nop"
    TRAP = "trap"
    VLOAD = "vload"  # vmovdqu ymm, [mem] (256-bit)
    VSTORE = "vstore"  # vmovdqa [mem], ymm (256-bit)
    VLOAD512 = "vload512"  # vmovdqu64 zmm, [mem] (AVX-512, Section 7.1)
    VSTORE512 = "vstore512"  # vmovdqa64 [mem], zmm
    VZEROUPPER = "vzeroupper"
    CALLRT = "callrt"  # invoke a named runtime service (malloc, free, ...)
    OUT = "out"  # append a register value to the process output stream
    EXIT = "exit"  # terminate the program with a status code


JCC_OPS = (Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE)
SETCC_OPS = (Op.SETE, Op.SETNE, Op.SETL, Op.SETLE, Op.SETG, Op.SETGE)

#: Default encoded sizes in bytes, indexed by opcode.  Operand-dependent
#: cases (push imm vs push reg, mov with immediates) are refined in
#: :func:`encoded_size`.
_BASE_SIZES = {
    Op.MOV: 3,
    Op.LEA: 5,
    Op.PUSH: 2,
    Op.POP: 2,
    Op.ADD: 4,
    Op.SUB: 4,
    Op.IMUL: 4,
    Op.IDIV: 4,
    Op.AND: 4,
    Op.OR: 4,
    Op.XOR: 3,
    Op.SHL: 4,
    Op.SHR: 4,
    Op.NEG: 3,
    Op.CMP: 4,
    Op.TEST: 3,
    Op.SETE: 4,
    Op.SETNE: 4,
    Op.SETL: 4,
    Op.SETLE: 4,
    Op.SETG: 4,
    Op.SETGE: 4,
    Op.JMP: 5,
    Op.JE: 6,
    Op.JNE: 6,
    Op.JL: 6,
    Op.JLE: 6,
    Op.JG: 6,
    Op.JGE: 6,
    Op.CALL: 5,
    Op.RET: 1,
    Op.NOP: 1,
    Op.TRAP: 1,
    Op.VLOAD: 8,
    Op.VSTORE: 8,
    Op.VLOAD512: 8,
    Op.VSTORE512: 8,
    Op.VZEROUPPER: 3,
    Op.CALLRT: 5,
    Op.OUT: 3,
    Op.EXIT: 2,
}


def encoded_size(op: Op, a: Optional[Operand], b: Optional[Operand]) -> int:
    """Return a plausible x86-64 encoding size for the instruction."""
    size = _BASE_SIZES[op]
    if op is Op.PUSH and isinstance(a, Imm):
        # Pushing a full 64-bit address (a BTRA or embedded return address)
        # needs a wide encoding; this is what makes the push-based BTRA
        # setup i-cache hungry.
        size = 8
    elif op is Op.MOV and isinstance(b, Imm):
        size = 10 if (b.symbol is not None or abs(b.value) > 0x7FFFFFFF) else 7
    elif op in (Op.MOV, Op.CMP, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR):
        if isinstance(a, Mem) or isinstance(b, Mem):
            size += 3
        elif isinstance(b, Imm):
            size += 3
    elif op is Op.CALL and not isinstance(a, (Imm, Label)):
        size = 3 if isinstance(a, Reg) else 7
    return size


class Instruction:
    """One decoded instruction.

    ``size`` is the encoded byte length (defaults from :func:`encoded_size`;
    NOP-insertion passes override it to emit multi-byte NOP padding).
    ``tag`` is an optional provenance marker ("btra-setup", "prolog-trap",
    ...) used by tests and the evaluation harness, never by the CPU.
    """

    __slots__ = ("op", "a", "b", "size", "tag")

    def __init__(
        self,
        op: Op,
        a: Optional[Operand] = None,
        b: Optional[Operand] = None,
        size: Optional[int] = None,
        tag: Optional[str] = None,
    ):
        self.op = op
        self.a = a
        self.b = b
        self.size = encoded_size(op, a, b) if size is None else size
        self.tag = tag

    def operands(self) -> Tuple[Optional[Operand], Optional[Operand]]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.a is not None:
            parts.append(repr(self.a) if not isinstance(self.a, Reg) else self.a.name.lower())
        if self.b is not None:
            parts.append(repr(self.b) if not isinstance(self.b, Reg) else self.b.name.lower())
        text = " ".join(parts)
        if self.tag:
            text += f"  ; {self.tag}"
        return f"<{text}>"
