"""Paged virtual memory with per-page permissions.

The memory model is the part of the substrate R2C's reactive features rest
on.  Three permission configurations matter:

* **execute-only** (``Perm.X`` without ``Perm.R``): the text section is
  mapped this way, so an attacker's read primitive cannot disclose code —
  the leakage-resilience baseline R2C assumes (Section 3 of the paper).
* **guard pages** (``Perm.NONE``): the R2C runtime constructor strips read
  permission from the heap pages BTDPs point into; any dereference raises
  :class:`~repro.errors.GuardPageFault`, the "immediate fault, giving
  defenders a way to respond" of Section 4.2.
* ordinary ``RW`` data / stack pages, which the attacker *can* read — the
  whole point of the paper is surviving that.

Addresses are 64-bit; words are little-endian 8-byte integers.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GuardPageFault, MemoryFault

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1
WORD_BYTES = 8


class Perm(enum.IntFlag):
    """Page permission bits (mmap/mprotect style)."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X


def page_base(address: int) -> int:
    """Return the base address of the page containing ``address``."""
    return address & ~PAGE_MASK


def page_range(address: int, size: int) -> Iterator[int]:
    """Yield the base of every page overlapped by ``[address, address+size)``."""
    if size <= 0:
        return
    first = page_base(address)
    last = page_base(address + size - 1)
    for base in range(first, last + 1, PAGE_SIZE):
        yield base


class _Page:
    """One mapped page: backing bytes plus its current permissions."""

    __slots__ = ("data", "perm", "guard")

    def __init__(self, perm: Perm, guard: bool = False):
        self.data = bytearray(PAGE_SIZE)
        self.perm = perm
        self.guard = guard


class Memory:
    """Sparse paged address space.

    Pages are materialized on :meth:`map_region` and checked on every
    access.  A page flagged as *guard* raises :class:`GuardPageFault`
    instead of the generic :class:`MemoryFault` so the attack monitor can
    attribute the crash to a booby trap.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, _Page] = {}
        # Monotonic permission epoch: bumped by every map/unmap/protect so
        # execution backends may memoize per-address fetch-permission checks
        # and revalidate only when the permission landscape actually moved.
        self.perm_epoch = 0
        # Pages actually touched by any access — the resident set.  Mapping
        # a region does not make it resident (demand paging), which is what
        # lets the maxrss experiment of Section 6.2.5 distinguish BTDP guard
        # pages (touched by the allocator) from merely reserved space.
        self._touched: set = set()

    # -- mapping -----------------------------------------------------------

    def map_region(self, address: int, size: int, perm: Perm) -> None:
        """Map ``size`` bytes at ``address`` (page-granular) with ``perm``."""
        self.perm_epoch += 1
        for base in page_range(address, size):
            if base in self._pages:
                raise MemoryFault("write", base, "already mapped")
            self._pages[base] = _Page(perm)

    def unmap_region(self, address: int, size: int) -> None:
        self.perm_epoch += 1
        for base in page_range(address, size):
            self._pages.pop(base, None)

    def protect(self, address: int, size: int, perm: Perm, *, guard: bool = False) -> None:
        """Change permissions of mapped pages (mprotect analogue).

        ``guard=True`` marks the pages as booby-trap guard pages so that
        faults on them are classified as detections.
        """
        self.perm_epoch += 1
        for base in page_range(address, size):
            page = self._pages.get(base)
            if page is None:
                raise MemoryFault("write", base, "unmapped")
            page.perm = perm
            page.guard = guard

    def clone(self) -> "Memory":
        """Deep-copy the address space: page contents, permissions, guard
        flags, the permission epoch, and the resident set.

        The clone is fully independent — writes and protection changes on
        either side never show through.  This is the substrate for replica
        processes (:meth:`repro.machine.process.Process.clone`): copying
        pages wholesale is an order of magnitude cheaper than re-running
        the loader and the runtime constructors."""
        clone = Memory.__new__(Memory)
        pages: Dict[int, _Page] = {}
        for base, page in self._pages.items():
            copy = _Page.__new__(_Page)
            copy.data = bytearray(page.data)
            copy.perm = page.perm
            copy.guard = page.guard
            pages[base] = copy
        clone._pages = pages
        clone.perm_epoch = self.perm_epoch
        clone._touched = set(self._touched)
        return clone

    def is_mapped(self, address: int) -> bool:
        return page_base(address) in self._pages

    def perm_at(self, address: int) -> Optional[Perm]:
        page = self._pages.get(page_base(address))
        return None if page is None else page.perm

    def is_guard(self, address: int) -> bool:
        page = self._pages.get(page_base(address))
        return bool(page and page.guard)

    def mapped_pages(self) -> List[Tuple[int, Perm]]:
        """Return (base, perm) for every mapped page, sorted by address."""
        return sorted((base, page.perm) for base, page in self._pages.items())

    def resident_bytes(self) -> int:
        """Total bytes of *touched* pages — the maxrss analogue (Section 6.2.5)."""
        return len(self._touched) * PAGE_SIZE

    # -- access checks -----------------------------------------------------

    def _check(self, kind: str, need: Perm, address: int, size: int) -> None:
        for base in page_range(address, size):
            page = self._pages.get(base)
            if page is None:
                raise MemoryFault(kind, address, "unmapped")
            if not (page.perm & need):
                if page.guard:
                    raise GuardPageFault(kind, address, "guard page")
                raise MemoryFault(kind, address, "protection")

    # -- data access -------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes; requires ``Perm.R`` on every touched page."""
        self._check("read", Perm.R, address, size)
        return self._copy_out(address, size)

    def write(self, address: int, data: bytes) -> None:
        """Write bytes; requires ``Perm.W`` on every touched page."""
        self._check("write", Perm.W, address, len(data))
        self._copy_in(address, data)

    def read_word(self, address: int) -> int:
        return int.from_bytes(self.read(address, WORD_BYTES), "little")

    def write_word(self, address: int, value: int) -> None:
        self.write(address, (value & (2**64 - 1)).to_bytes(WORD_BYTES, "little"))

    def fetch_check(self, address: int, size: int = 1) -> None:
        """Verify that instruction fetch from ``address`` is allowed."""
        self._check("fetch", Perm.X, address, size)
        self._touched.add(address & ~PAGE_MASK)

    # -- privileged access (loader / runtime, bypasses permissions) ---------

    def store_raw(self, address: int, data: bytes) -> None:
        """Write ignoring permissions.  Used by the loader and runtime only."""
        for base in page_range(address, len(data)):
            if base not in self._pages:
                raise MemoryFault("write", base, "unmapped")
        self._copy_in(address, data)

    def load_raw(self, address: int, size: int) -> bytes:
        """Read ignoring permissions.  Used by the runtime/debugger only."""
        for base in page_range(address, size):
            if base not in self._pages:
                raise MemoryFault("read", base, "unmapped")
        return self._copy_out(address, size)

    def store_word_raw(self, address: int, value: int) -> None:
        self.store_raw(address, (value & (2**64 - 1)).to_bytes(WORD_BYTES, "little"))

    def load_word_raw(self, address: int) -> int:
        return int.from_bytes(self.load_raw(address, WORD_BYTES), "little")

    # -- fault injection -----------------------------------------------------

    def corrupt_bit(self, address: int, bit: int) -> None:
        """Flip one bit in a mapped page, ignoring permissions.

        The reliability layer's bitflip injection (:mod:`repro.reliability.
        faults`) models single-event upsets / rowhammer-style corruption:
        the flip bypasses permissions (like the hardware would) but still
        requires the page to be mapped — flipping unmapped addresses is a
        plan bug, not a simulated fault.
        """
        page = self._pages.get(page_base(address))
        if page is None:
            raise MemoryFault("write", address, "unmapped")
        page.data[address & PAGE_MASK] ^= 1 << (bit & 7)

    # -- internals ----------------------------------------------------------

    def _copy_out(self, address: int, size: int) -> bytes:
        out = bytearray(size)
        pos = 0
        while pos < size:
            addr = address + pos
            base = page_base(addr)
            offset = addr - base
            take = min(PAGE_SIZE - offset, size - pos)
            out[pos : pos + take] = self._pages[base].data[offset : offset + take]
            self._touched.add(base)
            pos += take
        return bytes(out)

    def _copy_in(self, address: int, data: bytes) -> None:
        pos = 0
        size = len(data)
        while pos < size:
            addr = address + pos
            base = page_base(addr)
            offset = addr - base
            take = min(PAGE_SIZE - offset, size - pos)
            self._pages[base].data[offset : offset + take] = data[pos : pos + take]
            self._touched.add(base)
            pos += take
