"""Paged virtual memory with per-page permissions.

The memory model is the part of the substrate R2C's reactive features rest
on.  Three permission configurations matter:

* **execute-only** (``Perm.X`` without ``Perm.R``): the text section is
  mapped this way, so an attacker's read primitive cannot disclose code —
  the leakage-resilience baseline R2C assumes (Section 3 of the paper).
* **guard pages** (``Perm.NONE``): the R2C runtime constructor strips read
  permission from the heap pages BTDPs point into; any dereference raises
  :class:`~repro.errors.GuardPageFault`, the "immediate fault, giving
  defenders a way to respond" of Section 4.2.
* ordinary ``RW`` data / stack pages, which the attacker *can* read — the
  whole point of the paper is surviving that.

Addresses are 64-bit; words are little-endian 8-byte integers.
"""

from __future__ import annotations

import enum
import sys
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GuardPageFault, MemoryFault

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1
WORD_BYTES = 8

#: Largest in-page offset a whole word fits at.
_WORD_SPAN = PAGE_SIZE - WORD_BYTES
_WORD_MASK = (1 << 64) - 1


class Perm(enum.IntFlag):
    """Page permission bits (mmap/mprotect style)."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X


def page_base(address: int) -> int:
    """Return the base address of the page containing ``address``."""
    return address & ~PAGE_MASK


def page_range(address: int, size: int) -> Iterator[int]:
    """Yield the base of every page overlapped by ``[address, address+size)``."""
    if size <= 0:
        return
    first = page_base(address)
    last = page_base(address + size - 1)
    for base in range(first, last + 1, PAGE_SIZE):
        yield base


class _Page:
    """One mapped page: backing bytes plus its current permissions.

    ``bits`` mirrors ``perm`` as a plain ``int`` so the single-page access
    fast paths can test permissions with an integer AND instead of the much
    slower ``enum.IntFlag.__and__`` — on interpreter-bound runs the enum op
    alone is a measurable fraction of every memory access.

    ``data`` is demand-zero: ``None`` until the first byte access
    materializes the backing ``bytearray``.  Mapping a multi-megabyte heap
    arena allocates page *descriptors* only, so load time scales with the
    bytes actually written, not the address space reserved — and
    :meth:`Memory.clone` copies only materialized pages.

    ``mv`` is a 64-bit view of ``data`` (``memoryview.cast("Q")``), created
    at materialization on little-endian hosts.  Aligned word accesses — the
    overwhelmingly common case: stack operations and compiler-emitted loads
    and stores are all 8-byte aligned — become a single indexed read or
    write instead of a slice plus ``int.from_bytes``/``to_bytes`` round
    trip.  The view shares the page's buffer, so byte-level writes and bit
    corruption stay coherent with it; pages are never resized, so exporting
    the buffer is safe.
    """

    __slots__ = ("data", "perm", "guard", "bits", "mv")

    def __init__(self, perm: Perm, guard: bool = False):
        self.data = None
        self.mv = None
        self.perm = perm
        self.guard = guard
        self.bits = int(perm)


#: ``memoryview.cast("Q")`` reads native byte order; guest words are
#: little-endian, so the word view only exists on little-endian hosts
#: (big-endian falls back to the byte-slice path — correct, just slower).
_LITTLE_ENDIAN = sys.byteorder == "little"


class Memory:
    """Sparse paged address space.

    Pages are materialized on :meth:`map_region` and checked on every
    access.  A page flagged as *guard* raises :class:`GuardPageFault`
    instead of the generic :class:`MemoryFault` so the attack monitor can
    attribute the crash to a booby trap.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, _Page] = {}
        # Monotonic permission epoch: bumped by every map/unmap/protect so
        # execution backends may memoize per-address fetch-permission checks
        # and revalidate only when the permission landscape actually moved.
        self.perm_epoch = 0
        # Pages fetched from without materializing data (execute-only text
        # never allocates backing bytes).  Everything else materializes the
        # page, bumping ``_resident``; residency is ``materialized ∪
        # _touched`` — see :meth:`resident_bytes`.  Mapping a region does
        # not make it resident (demand paging), which is what lets the
        # maxrss experiment of Section 6.2.5 distinguish BTDP guard pages
        # (touched by the allocator) from merely reserved space.
        self._touched: set = set()
        self._resident = 0
        # Aligned-word dispatch tables for the jit backend's inlined memory
        # fast path: page base -> 64-bit word view, one table per required
        # permission.  A base is present iff the page is materialized AND
        # currently grants the permission, so a hit licenses the access
        # outright; every miss (unmapped, unmaterialized, protected, guard,
        # big-endian host) falls back to :meth:`read_word` /
        # :meth:`write_word`, which reproduce the exact fault.  Maintained
        # by materialization, :meth:`protect`, :meth:`unmap_region`, and
        # :meth:`clone`; the dict objects themselves are never replaced, so
        # bound ``.get`` references stay valid for the memory's lifetime.
        self._rmv: Dict[int, object] = {}
        self._wmv: Dict[int, object] = {}

    def _materialize(self, base: int, page: _Page) -> bytearray:
        """Allocate a page's demand-zero backing store (and word views)."""
        data = page.data = bytearray(PAGE_SIZE)
        if _LITTLE_ENDIAN:
            mv = page.mv = memoryview(data).cast("Q")
            bits = page.bits
            if bits & 1:
                self._rmv[base] = mv
            if bits & 2:
                self._wmv[base] = mv
        # A fetch-touched page moves from the ``_touched`` tally to the
        # materialized tally; the discard keeps the sum counting it once.
        self._resident += 1
        self._touched.discard(base)
        return data

    def _refresh_views(self, base: int, page: _Page) -> None:
        """Re-derive the word-map entries for one page after a permission
        change (or removal on unmap)."""
        mv = page.mv
        if mv is None:
            return
        bits = page.bits
        if bits & 1:
            self._rmv[base] = mv
        else:
            self._rmv.pop(base, None)
        if bits & 2:
            self._wmv[base] = mv
        else:
            self._wmv.pop(base, None)

    # -- mapping -----------------------------------------------------------

    def map_region(self, address: int, size: int, perm: Perm) -> None:
        """Map ``size`` bytes at ``address`` (page-granular) with ``perm``."""
        self.perm_epoch += 1
        for base in page_range(address, size):
            if base in self._pages:
                raise MemoryFault("write", base, "already mapped")
            self._pages[base] = _Page(perm)

    def unmap_region(self, address: int, size: int) -> None:
        self.perm_epoch += 1
        for base in page_range(address, size):
            page = self._pages.pop(base, None)
            if page is not None and page.data is not None:
                self._resident -= 1
                self._rmv.pop(base, None)
                self._wmv.pop(base, None)

    def protect(self, address: int, size: int, perm: Perm, *, guard: bool = False) -> None:
        """Change permissions of mapped pages (mprotect analogue).

        ``guard=True`` marks the pages as booby-trap guard pages so that
        faults on them are classified as detections.
        """
        self.perm_epoch += 1
        for base in page_range(address, size):
            page = self._pages.get(base)
            if page is None:
                raise MemoryFault("write", base, "unmapped")
            page.perm = perm
            page.bits = int(perm)
            page.guard = guard
            self._refresh_views(base, page)

    def clone(self) -> "Memory":
        """Deep-copy the address space: page contents, permissions, guard
        flags, the permission epoch, and the resident set.

        The clone is fully independent — writes and protection changes on
        either side never show through.  This is the substrate for replica
        processes (:meth:`repro.machine.process.Process.clone`): copying
        pages wholesale is an order of magnitude cheaper than re-running
        the loader and the runtime constructors."""
        clone = Memory.__new__(Memory)
        pages: Dict[int, _Page] = {}
        rmv: Dict[int, object] = {}
        wmv: Dict[int, object] = {}
        for base, page in self._pages.items():
            copy = _Page.__new__(_Page)
            data = page.data
            if data is None:
                copy.data = None
                copy.mv = None
            else:
                copy.data = data = bytearray(data)
                mv = copy.mv = memoryview(data).cast("Q") if _LITTLE_ENDIAN else None
                if mv is not None:
                    bits = page.bits
                    if bits & 1:
                        rmv[base] = mv
                    if bits & 2:
                        wmv[base] = mv
            copy.perm = page.perm
            copy.guard = page.guard
            copy.bits = page.bits
            pages[base] = copy
        clone._pages = pages
        clone.perm_epoch = self.perm_epoch
        clone._touched = set(self._touched)
        clone._resident = self._resident
        clone._rmv = rmv
        clone._wmv = wmv
        return clone

    def is_mapped(self, address: int) -> bool:
        return page_base(address) in self._pages

    def perm_at(self, address: int) -> Optional[Perm]:
        page = self._pages.get(page_base(address))
        return None if page is None else page.perm

    def is_guard(self, address: int) -> bool:
        page = self._pages.get(page_base(address))
        return bool(page and page.guard)

    def mapped_pages(self) -> List[Tuple[int, Perm]]:
        """Return (base, perm) for every mapped page, sorted by address."""
        return sorted((base, page.perm) for base, page in self._pages.items())

    def resident_bytes(self) -> int:
        """Total bytes of *touched* pages — the maxrss analogue (Section 6.2.5).

        A page is resident when its backing store was materialized (any
        read or write does this) or when it was fetched from
        (execute-only text never materializes data).  Both tallies are
        maintained incrementally — a counter bumped at materialization
        plus the fetch-only ``_touched`` set — so sampling residency is
        O(1) and the per-access fast paths carry no extra bookkeeping.
        """
        return (self._resident + len(self._touched)) * PAGE_SIZE

    # -- access checks -----------------------------------------------------

    def _check(self, kind: str, need: Perm, address: int, size: int) -> None:
        for base in page_range(address, size):
            page = self._pages.get(base)
            if page is None:
                raise MemoryFault(kind, address, "unmapped")
            if not (page.perm & need):
                if page.guard:
                    raise GuardPageFault(kind, address, "guard page")
                raise MemoryFault(kind, address, "protection")

    # -- data access -------------------------------------------------------
    #
    # Every accessor has a single-page fast path: when the access lies
    # inside one mapped page that already grants the needed permission,
    # service it with one dict probe and an integer AND.  Anything else —
    # page-spanning, unmapped, insufficient permission, guard pages — falls
    # through to the original ``_check`` + copy path, so every fault is
    # raised from exactly the same place with exactly the same message.
    # Materializing the backing store marks the page resident (see
    # :meth:`resident_bytes`), so the fast paths carry no ``_touched``
    # bookkeeping.  Aligned word accesses go through the page's 64-bit
    # view — one indexed operation instead of a slice and a byte-order
    # conversion.

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes; requires ``Perm.R`` on every touched page."""
        offset = address & PAGE_MASK
        if 0 < size <= PAGE_SIZE - offset:
            base = address - offset
            page = self._pages.get(base)
            if page is not None and page.bits & 1:  # Perm.R
                data = page.data
                if data is None:
                    data = self._materialize(base, page)
                return bytes(data[offset : offset + size])
        self._check("read", Perm.R, address, size)
        return self._copy_out(address, size)

    def write(self, address: int, data: bytes) -> None:
        """Write bytes; requires ``Perm.W`` on every touched page."""
        size = len(data)
        offset = address & PAGE_MASK
        if 0 < size <= PAGE_SIZE - offset:
            base = address - offset
            page = self._pages.get(base)
            if page is not None and page.bits & 2:  # Perm.W
                backing = page.data
                if backing is None:
                    backing = self._materialize(base, page)
                backing[offset : offset + size] = data
                return
        self._check("write", Perm.W, address, size)
        self._copy_in(address, data)

    def read_word(self, address: int) -> int:
        offset = address & PAGE_MASK
        if offset <= _WORD_SPAN:
            base = address - offset
            page = self._pages.get(base)
            if page is not None and page.bits & 1:  # Perm.R
                data = page.data
                if data is None:
                    data = self._materialize(base, page)
                if not offset & 7:
                    mv = page.mv
                    if mv is not None:
                        return mv[offset >> 3]
                return int.from_bytes(data[offset : offset + WORD_BYTES], "little")
        return int.from_bytes(self.read(address, WORD_BYTES), "little")

    def write_word(self, address: int, value: int) -> None:
        offset = address & PAGE_MASK
        if offset <= _WORD_SPAN:
            base = address - offset
            page = self._pages.get(base)
            if page is not None and page.bits & 2:  # Perm.W
                data = page.data
                if data is None:
                    data = self._materialize(base, page)
                if not offset & 7:
                    mv = page.mv
                    if mv is not None:
                        mv[offset >> 3] = value & _WORD_MASK
                        return
                data[offset : offset + WORD_BYTES] = (value & _WORD_MASK).to_bytes(
                    WORD_BYTES, "little"
                )
                return
        self.write(address, (value & _WORD_MASK).to_bytes(WORD_BYTES, "little"))

    def fetch_check(self, address: int, size: int = 1) -> None:
        """Verify that instruction fetch from ``address`` is allowed."""
        offset = address & PAGE_MASK
        if 0 < size <= PAGE_SIZE - offset:
            base = address - offset
            page = self._pages.get(base)
            if page is not None and page.bits & 4:  # Perm.X
                # Materialized pages are already in the resident tally.
                if page.data is None:
                    self._touched.add(base)
                return
        self._check("fetch", Perm.X, address, size)
        base = address & ~PAGE_MASK
        page = self._pages.get(base)
        if page is not None and page.data is None:
            self._touched.add(base)

    # -- privileged access (loader / runtime, bypasses permissions) ---------

    def store_raw(self, address: int, data: bytes) -> None:
        """Write ignoring permissions.  Used by the loader and runtime only."""
        for base in page_range(address, len(data)):
            if base not in self._pages:
                raise MemoryFault("write", base, "unmapped")
        self._copy_in(address, data)

    def load_raw(self, address: int, size: int) -> bytes:
        """Read ignoring permissions.  Used by the runtime/debugger only."""
        for base in page_range(address, size):
            if base not in self._pages:
                raise MemoryFault("read", base, "unmapped")
        return self._copy_out(address, size)

    def store_word_raw(self, address: int, value: int) -> None:
        self.store_raw(address, (value & (2**64 - 1)).to_bytes(WORD_BYTES, "little"))

    def load_word_raw(self, address: int) -> int:
        return int.from_bytes(self.load_raw(address, WORD_BYTES), "little")

    # -- fault injection -----------------------------------------------------

    def corrupt_bit(self, address: int, bit: int) -> None:
        """Flip one bit in a mapped page, ignoring permissions.

        The reliability layer's bitflip injection (:mod:`repro.reliability.
        faults`) models single-event upsets / rowhammer-style corruption:
        the flip bypasses permissions (like the hardware would) but still
        requires the page to be mapped — flipping unmapped addresses is a
        plan bug, not a simulated fault.
        """
        base = page_base(address)
        page = self._pages.get(base)
        if page is None:
            raise MemoryFault("write", address, "unmapped")
        data = page.data
        if data is None:
            data = self._materialize(base, page)
        data[address & PAGE_MASK] ^= 1 << (bit & 7)

    # -- internals ----------------------------------------------------------

    def _copy_out(self, address: int, size: int) -> bytes:
        out = bytearray(size)
        pos = 0
        while pos < size:
            addr = address + pos
            base = page_base(addr)
            offset = addr - base
            take = min(PAGE_SIZE - offset, size - pos)
            page = self._pages[base]
            backing = page.data
            if backing is None:
                backing = self._materialize(base, page)
            out[pos : pos + take] = backing[offset : offset + take]
            pos += take
        return bytes(out)

    def _copy_in(self, address: int, data: bytes) -> None:
        pos = 0
        size = len(data)
        while pos < size:
            addr = address + pos
            base = page_base(addr)
            offset = addr - base
            take = min(PAGE_SIZE - offset, size - pos)
            page = self._pages[base]
            backing = page.data
            if backing is None:
                backing = self._materialize(base, page)
            backing[offset : offset + take] = data[pos : pos + take]
            pos += take
