"""The decode stage: pre-resolved micro-ops for the ``fast`` backend.

The reference interpreter re-classifies operands (``isinstance`` chains),
re-computes memory-operand addresses from scratch, and re-derives i-cache
line spans for every executed instruction.  All of that is static: it
depends only on the binary, the (per-process) load layout, and the machine
cost model — never on run-time machine state.  This module pays those
costs once per loaded binary:

* :func:`decode_binary` lowers a :class:`~repro.toolchain.binary.Binary`
  into a handler-per-instruction template table, cached globally by the
  binary's content fingerprint ``(module_fingerprint, config_digest)`` —
  the same key the compile cache uses, so a binary is decoded exactly once
  per session no matter how many processes load it.
* :func:`get_bound_program` binds the templates to one loaded process
  under one cost model, producing a table of :class:`MicroOp`\\ s with
  absolute addresses, precomputed fall-through/branch-target links,
  per-instruction base cost, and i-cache line occupancy folded in.

Handlers follow a tiny calling convention shared with the ``fast``
backend driver (:mod:`repro.machine.backends`): ``handler(cpu, uop)``
returns ``None`` to fall through, a :class:`MicroOp` for a pre-resolved
branch target, an ``int`` for a computed target (``ret``/indirect calls),
:data:`HALT` after ``EXIT``, or :data:`SYNC` after a runtime service call
(whose host code may have changed page permissions).

Every handler replicates the reference interpreter's semantics exactly —
including operand evaluation order, masking, fault types and messages —
so both backends produce byte-identical :class:`ExecutionResult`\\ s; the
differential tests in ``tests/test_backends.py`` and the property-based
equivalence suite enforce this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BoobyTrapTriggered,
    InvalidInstruction,
    MachineError,
    ShadowStackViolation,
    StackMisaligned,
)
from repro.machine.icache import line_span
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg, VECTOR_WORDS, WORD
from repro.numeric import MASK64, to_signed, truncated_div

#: Sentinel returned by the EXIT handler: stop the driver loop.
HALT = object()
#: Sentinel returned by the CALLRT handler: fall through, but re-read the
#: memory permission epoch (the service may have remapped/mprotected pages).
SYNC = object()

_RSP = int(Reg.RSP)
_RAX = int(Reg.RAX)
_YMM0 = int(Reg.YMM0)


class MicroOp:
    """One pre-resolved instruction, bound to a process and cost model."""

    __slots__ = (
        "rip",
        "next_rip",
        "size",
        "op",
        "tag",
        "instr",
        "base_cost",
        "has_mem",
        "lines",
        "handler",
        "next_u",
        "target",
        "a_reg",
        "b_reg",
        "imm",
        "a_base",
        "a_off",
        "b_base",
        "b_off",
        "mem",
        "sym",
        "fetch_epoch",
    )


class BoundProgram:
    """A fully bound micro-op table for one (process, cost model) pair.

    ``index`` maps absolute addresses to micro-ops; ``order`` lists the
    same micro-ops in text order.  The ordered view is the lowering IR
    the upper tiers consume: basic-block recovery
    (:mod:`repro.machine.blocks`) walks ``order`` splitting at
    :data:`TERMINATOR_OPS`, and the block boundaries it derives are
    *stable* — they depend only on addresses, sizes, and direct branch
    targets, all of which are fixed at bind time.
    """

    __slots__ = ("index", "order", "entry_count")

    def __init__(self, index: Dict[int, MicroOp], order: Optional[List[MicroOp]] = None):
        self.index = index
        self.order = list(index.values()) if order is None else order
        self.entry_count = len(index)


Handler = Callable[[object, MicroOp], object]


# ---------------------------------------------------------------------------
# Specialized handlers.  Each covers one (opcode, operand-kind) combination
# and reads pre-extracted MicroOp fields instead of re-classifying operands.
# ---------------------------------------------------------------------------


def _mov_rr(cpu, u):
    r = cpu.regs
    r[u.a_reg] = r[u.b_reg]


def _mov_ri(cpu, u):
    cpu.regs[u.a_reg] = u.imm


def _mov_r_mb(cpu, u):
    r = cpu.regs
    r[u.a_reg] = u.mem.read_word((u.b_off + r[u.b_base]) & MASK64)


def _mov_r_ma(cpu, u):
    cpu.regs[u.a_reg] = u.mem.read_word(u.b_off)


def _mov_mb_r(cpu, u):
    r = cpu.regs
    u.mem.write_word((u.a_off + r[u.a_base]) & MASK64, r[u.b_reg])


def _mov_ma_r(cpu, u):
    u.mem.write_word(u.a_off, cpu.regs[u.b_reg])


def _mov_mb_i(cpu, u):
    u.mem.write_word((u.a_off + cpu.regs[u.a_base]) & MASK64, u.imm)


def _mov_ma_i(cpu, u):
    u.mem.write_word(u.a_off, u.imm)


def _lea_r_mb(cpu, u):
    r = cpu.regs
    r[u.a_reg] = (u.b_off + r[u.b_base]) & MASK64


def _lea_r_ma(cpu, u):
    cpu.regs[u.a_reg] = u.b_off


def _push_r(cpu, u):
    r = cpu.regs
    rsp = (r[_RSP] - WORD) & MASK64
    r[_RSP] = rsp
    u.mem.write_word(rsp, r[u.a_reg])


def _push_i(cpu, u):
    r = cpu.regs
    rsp = (r[_RSP] - WORD) & MASK64
    r[_RSP] = rsp
    u.mem.write_word(rsp, u.imm)


def _pop_r(cpu, u):
    r = cpu.regs
    rsp = r[_RSP]
    r[u.a_reg] = u.mem.read_word(rsp)
    r[_RSP] = (rsp + WORD) & MASK64


def _make_alu(fn) -> Dict[str, Handler]:
    """Build the specialized variants of one two-operand ALU opcode."""

    def rr(cpu, u):
        r = cpu.regs
        r[u.a_reg] = fn(r[u.a_reg], r[u.b_reg]) & MASK64

    def ri(cpu, u):
        r = cpu.regs
        r[u.a_reg] = fn(r[u.a_reg], u.imm) & MASK64

    def r_mb(cpu, u):
        r = cpu.regs
        r[u.a_reg] = fn(r[u.a_reg], u.mem.read_word((u.b_off + r[u.b_base]) & MASK64)) & MASK64

    def r_ma(cpu, u):
        r = cpu.regs
        r[u.a_reg] = fn(r[u.a_reg], u.mem.read_word(u.b_off)) & MASK64

    def mb_r(cpu, u):
        r = cpu.regs
        mem = u.mem
        addr = (u.a_off + r[u.a_base]) & MASK64
        mem.write_word(addr, fn(mem.read_word(addr), r[u.b_reg]) & MASK64)

    def mb_i(cpu, u):
        mem = u.mem
        addr = (u.a_off + cpu.regs[u.a_base]) & MASK64
        mem.write_word(addr, fn(mem.read_word(addr), u.imm) & MASK64)

    return {"RR": rr, "RI": ri, "R,MB": r_mb, "R,MA": r_ma, "MB,R": mb_r, "MB,I": mb_i}


_ALU_FNS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << (b & 63),
    Op.SHR: lambda a, b: a >> (b & 63),
    Op.IMUL: lambda a, b: to_signed(a) * to_signed(b),
}


def _idiv_rr(cpu, u):
    r = cpu.regs
    divisor = to_signed(r[u.b_reg])
    if divisor == 0:
        raise MachineError(f"division by zero at {u.rip:#x}")
    r[u.a_reg] = truncated_div(to_signed(r[u.a_reg]), divisor) & MASK64


def _idiv_ri(cpu, u):
    divisor = to_signed(u.imm)
    if divisor == 0:
        raise MachineError(f"division by zero at {u.rip:#x}")
    r = cpu.regs
    r[u.a_reg] = truncated_div(to_signed(r[u.a_reg]), divisor) & MASK64


def _neg_r(cpu, u):
    r = cpu.regs
    r[u.a_reg] = (-r[u.a_reg]) & MASK64


def _cmp_rr(cpu, u):
    r = cpu.regs
    cpu._cmp = to_signed(r[u.a_reg]) - to_signed(r[u.b_reg])


def _cmp_ri(cpu, u):
    cpu._cmp = to_signed(cpu.regs[u.a_reg]) - to_signed(u.imm)


def _cmp_r_mb(cpu, u):
    r = cpu.regs
    cpu._cmp = to_signed(r[u.a_reg]) - to_signed(
        u.mem.read_word((u.b_off + r[u.b_base]) & MASK64)
    )


def _cmp_mb_r(cpu, u):
    r = cpu.regs
    cpu._cmp = to_signed(u.mem.read_word((u.a_off + r[u.a_base]) & MASK64)) - to_signed(
        r[u.b_reg]
    )


def _cmp_mb_i(cpu, u):
    cpu._cmp = to_signed(
        u.mem.read_word((u.a_off + cpu.regs[u.a_base]) & MASK64)
    ) - to_signed(u.imm)


def _test_rr(cpu, u):
    r = cpu.regs
    cpu._cmp = to_signed(r[u.a_reg] & r[u.b_reg])


def _test_ri(cpu, u):
    cpu._cmp = to_signed(cpu.regs[u.a_reg] & u.imm)


def _make_setcc(cond) -> Handler:
    def h(cpu, u):
        cpu.regs[u.a_reg] = 1 if cond(cpu._cmp) else 0

    return h


def _jmp_i(cpu, u):
    cpu._bk_branches += 1
    cpu._bk_taken += 1
    return u.target


def _jmp_r(cpu, u):
    cpu._bk_branches += 1
    cpu._bk_taken += 1
    return cpu.regs[u.a_reg]


def _make_jcc(cond) -> Handler:
    def h(cpu, u):
        cpu._bk_branches += 1
        if cond(cpu._cmp):
            cpu._bk_taken += 1
            return u.target
        return None

    return h


_CONDITIONS = {
    "E": lambda c: c == 0,
    "NE": lambda c: c != 0,
    "L": lambda c: c < 0,
    "LE": lambda c: c <= 0,
    "G": lambda c: c > 0,
    "GE": lambda c: c >= 0,
}


def _call_i(cpu, u):
    r = cpu.regs
    if cpu.check_alignment and r[_RSP] % 16 != 0:
        raise StackMisaligned(
            f"rsp={r[_RSP]:#x} not 16-byte aligned at call ({u.rip:#x})"
        )
    rsp = (r[_RSP] - WORD) & MASK64
    r[_RSP] = rsp
    u.mem.write_word(rsp, u.next_rip)
    shadow = cpu._bk_shadow
    if shadow is not None:
        shadow.append(u.next_rip)
    cpu._bk_calls += 1
    return u.target


def _call_r(cpu, u):
    r = cpu.regs
    if cpu.check_alignment and r[_RSP] % 16 != 0:
        raise StackMisaligned(
            f"rsp={r[_RSP]:#x} not 16-byte aligned at call ({u.rip:#x})"
        )
    target = r[u.a_reg]
    rsp = (r[_RSP] - WORD) & MASK64
    r[_RSP] = rsp
    u.mem.write_word(rsp, u.next_rip)
    shadow = cpu._bk_shadow
    if shadow is not None:
        shadow.append(u.next_rip)
    cpu._bk_calls += 1
    return target


def _ret(cpu, u):
    r = cpu.regs
    rsp = r[_RSP]
    target = u.mem.read_word(rsp)
    r[_RSP] = (rsp + WORD) & MASK64
    shadow = cpu._bk_shadow
    if shadow is not None:
        expected = shadow.pop() if shadow else 0
        if expected != target:
            raise ShadowStackViolation(expected, target)
    cpu._bk_rets += 1
    return target


def _nop(cpu, u):
    return None


def _trap(cpu, u):
    cpu._bk_traps += 1
    raise BoobyTrapTriggered(u.rip)


def _make_vload(nbytes: int, absolute: bool) -> Handler:
    if absolute:

        def h(cpu, u):
            cpu.vregs[u.a_reg - _YMM0] = u.mem.read(u.b_off, nbytes)

    else:

        def h(cpu, u):
            addr = (u.b_off + cpu.regs[u.b_base]) & MASK64
            cpu.vregs[u.a_reg - _YMM0] = u.mem.read(addr, nbytes)

    return h


def _make_vstore(absolute: bool) -> Handler:
    if absolute:

        def h(cpu, u):
            u.mem.write(u.a_off, cpu.vregs[u.b_reg - _YMM0])

    else:

        def h(cpu, u):
            addr = (u.a_off + cpu.regs[u.a_base]) & MASK64
            u.mem.write(addr, cpu.vregs[u.b_reg - _YMM0])

    return h


def _callrt(cpu, u):
    if u.sym is None:
        raise InvalidInstruction("callrt requires a service name")
    fn = cpu.process.service(u.sym)
    cpu.rip = u.rip  # services observe the machine mid-instruction
    cpu.regs[_RAX] = fn(cpu.process, cpu) & MASK64
    return SYNC


def _out_r(cpu, u):
    cpu.process.output.append(cpu.regs[u.a_reg])


def _out_i(cpu, u):
    cpu.process.output.append(u.imm)


def _exit_i(cpu, u):
    cpu._exit_code = u.imm
    cpu._halted = True
    return HALT


def _exit_r(cpu, u):
    cpu._exit_code = cpu.regs[u.a_reg]
    cpu._halted = True
    return HALT


def _exit_n(cpu, u):
    cpu._exit_code = 0
    cpu._halted = True
    return HALT


# ---------------------------------------------------------------------------
# Generic fallback handlers: one per opcode, operating on the original
# (rebased) Instruction via the CPU's reference operand helpers.  These are
# the reference semantics verbatim, adapted to the driver protocol, and
# cover every operand combination the specialized table does not.
# ---------------------------------------------------------------------------


def _g_mov(cpu, u):
    i = u.instr
    cpu._write_operand(i.a, cpu._read_operand(i.b))


def _g_push(cpu, u):
    r = cpu.regs
    rsp = (r[_RSP] - WORD) & MASK64
    r[_RSP] = rsp
    u.mem.write_word(rsp, cpu._read_operand(u.instr.a))


def _g_pop(cpu, u):
    r = cpu.regs
    rsp = r[_RSP]
    cpu._write_operand(u.instr.a, u.mem.read_word(rsp))
    r[_RSP] = (rsp + WORD) & MASK64


def _make_g_alu(fn) -> Handler:
    def h(cpu, u):
        i = u.instr
        cpu._write_operand(i.a, fn(cpu._read_operand(i.a), cpu._read_operand(i.b)))

    return h


def _g_idiv(cpu, u):
    i = u.instr
    divisor = to_signed(cpu._read_operand(i.b))
    if divisor == 0:
        raise MachineError(f"division by zero at {u.rip:#x}")
    dividend = to_signed(cpu._read_operand(i.a))
    cpu._write_operand(i.a, truncated_div(dividend, divisor))


def _g_neg(cpu, u):
    cpu._write_operand(u.instr.a, -cpu._read_operand(u.instr.a))


def _g_lea(cpu, u):
    i = u.instr
    if not isinstance(i.b, Mem):
        raise InvalidInstruction("lea requires a memory operand")
    cpu._write_operand(i.a, cpu._mem_address(i.b))


def _g_cmp(cpu, u):
    i = u.instr
    cpu._cmp = to_signed(cpu._read_operand(i.a)) - to_signed(cpu._read_operand(i.b))


def _g_test(cpu, u):
    i = u.instr
    cpu._cmp = to_signed(cpu._read_operand(i.a) & cpu._read_operand(i.b))


def _make_g_setcc(cond) -> Handler:
    def h(cpu, u):
        cpu._write_operand(u.instr.a, 1 if cond(cpu._cmp) else 0)

    return h


def _g_jmp(cpu, u):
    # Reference semantics: a faulting indirect target is not counted.
    target = cpu._branch_target(u.instr.a)
    cpu._bk_branches += 1
    cpu._bk_taken += 1
    return target


def _make_g_jcc(cond) -> Handler:
    def h(cpu, u):
        cpu._bk_branches += 1
        if cond(cpu._cmp):
            target = cpu._branch_target(u.instr.a)
            cpu._bk_taken += 1
            return target
        return None

    return h


def _g_call(cpu, u):
    r = cpu.regs
    if cpu.check_alignment and r[_RSP] % 16 != 0:
        raise StackMisaligned(
            f"rsp={r[_RSP]:#x} not 16-byte aligned at call ({u.rip:#x})"
        )
    target = cpu._branch_target(u.instr.a)
    rsp = (r[_RSP] - WORD) & MASK64
    r[_RSP] = rsp
    u.mem.write_word(rsp, u.next_rip)
    shadow = cpu._bk_shadow
    if shadow is not None:
        shadow.append(u.next_rip)
    cpu._bk_calls += 1
    return target


def _make_g_vload(nbytes: int) -> Handler:
    def h(cpu, u):
        i = u.instr
        if not isinstance(i.b, Mem):
            raise InvalidInstruction("vload requires a memory source")
        data = u.mem.read(cpu._mem_address(i.b), nbytes)
        cpu.vregs[i.a - Reg.YMM0] = data

    return h


def _g_vstore(cpu, u):
    i = u.instr
    if not isinstance(i.a, Mem):
        raise InvalidInstruction("vstore requires a memory destination")
    u.mem.write(cpu._mem_address(i.a), cpu.vregs[i.b - Reg.YMM0])


def _g_callrt(cpu, u):
    i = u.instr
    if not isinstance(i.a, Imm) or i.a.symbol is None:
        raise InvalidInstruction("callrt requires a service name")
    fn = cpu.process.service(i.a.symbol)
    cpu.rip = u.rip
    cpu.regs[_RAX] = fn(cpu.process, cpu) & MASK64
    return SYNC


def _g_out(cpu, u):
    cpu.process.output.append(cpu._read_operand(u.instr.a))


def _g_exit(cpu, u):
    i = u.instr
    cpu._exit_code = cpu._read_operand(i.a) if i.a is not None else 0
    cpu._halted = True
    return HALT


GENERIC: Dict[Op, Handler] = {
    Op.MOV: _g_mov,
    Op.PUSH: _g_push,
    Op.POP: _g_pop,
    Op.ADD: _make_g_alu(lambda a, b: a + b),
    Op.SUB: _make_g_alu(lambda a, b: a - b),
    Op.IMUL: _make_g_alu(lambda a, b: to_signed(a) * to_signed(b)),
    Op.IDIV: _g_idiv,
    Op.AND: _make_g_alu(lambda a, b: a & b),
    Op.OR: _make_g_alu(lambda a, b: a | b),
    Op.XOR: _make_g_alu(lambda a, b: a ^ b),
    Op.SHL: _make_g_alu(lambda a, b: a << (b & 63)),
    Op.SHR: _make_g_alu(lambda a, b: (a & MASK64) >> (b & 63)),
    Op.NEG: _g_neg,
    Op.LEA: _g_lea,
    Op.CMP: _g_cmp,
    Op.TEST: _g_test,
    Op.JMP: _g_jmp,
    Op.CALL: _g_call,
    Op.RET: _ret,  # operand-free: the specialized handler is the semantics
    Op.NOP: _nop,
    Op.TRAP: _trap,
    Op.VLOAD: _make_g_vload(WORD * VECTOR_WORDS),
    Op.VLOAD512: _make_g_vload(WORD * 2 * VECTOR_WORDS),
    Op.VSTORE: _g_vstore,
    Op.VSTORE512: _g_vstore,
    Op.VZEROUPPER: _nop,
    Op.CALLRT: _g_callrt,
    Op.OUT: _g_out,
    Op.EXIT: _g_exit,
}
for _name, _cond in _CONDITIONS.items():
    GENERIC[Op[f"SET{_name}"]] = _make_g_setcc(_cond)
    GENERIC[Op[f"J{_name}"]] = _make_g_jcc(_cond)


def _build_handler_table() -> Dict[Tuple[Op, str, str], Handler]:
    table: Dict[Tuple[Op, str, str], Handler] = {
        (Op.MOV, "R", "R"): _mov_rr,
        (Op.MOV, "R", "I"): _mov_ri,
        (Op.MOV, "R", "MB"): _mov_r_mb,
        (Op.MOV, "R", "MA"): _mov_r_ma,
        (Op.MOV, "MB", "R"): _mov_mb_r,
        (Op.MOV, "MA", "R"): _mov_ma_r,
        (Op.MOV, "MB", "I"): _mov_mb_i,
        (Op.MOV, "MA", "I"): _mov_ma_i,
        (Op.LEA, "R", "MB"): _lea_r_mb,
        (Op.LEA, "R", "MA"): _lea_r_ma,
        (Op.PUSH, "R", "N"): _push_r,
        (Op.PUSH, "I", "N"): _push_i,
        (Op.POP, "R", "N"): _pop_r,
        (Op.IDIV, "R", "R"): _idiv_rr,
        (Op.IDIV, "R", "I"): _idiv_ri,
        (Op.NEG, "R", "N"): _neg_r,
        (Op.CMP, "R", "R"): _cmp_rr,
        (Op.CMP, "R", "I"): _cmp_ri,
        (Op.CMP, "R", "MB"): _cmp_r_mb,
        (Op.CMP, "MB", "R"): _cmp_mb_r,
        (Op.CMP, "MB", "I"): _cmp_mb_i,
        (Op.TEST, "R", "R"): _test_rr,
        (Op.TEST, "R", "I"): _test_ri,
        (Op.JMP, "I", "N"): _jmp_i,
        (Op.JMP, "R", "N"): _jmp_r,
        (Op.CALL, "I", "N"): _call_i,
        (Op.CALL, "R", "N"): _call_r,
        (Op.RET, "N", "N"): _ret,
        (Op.NOP, "N", "N"): _nop,
        (Op.TRAP, "N", "N"): _trap,
        (Op.VLOAD, "R", "MB"): _make_vload(WORD * VECTOR_WORDS, False),
        (Op.VLOAD, "R", "MA"): _make_vload(WORD * VECTOR_WORDS, True),
        (Op.VLOAD512, "R", "MB"): _make_vload(WORD * 2 * VECTOR_WORDS, False),
        (Op.VLOAD512, "R", "MA"): _make_vload(WORD * 2 * VECTOR_WORDS, True),
        (Op.VSTORE, "MB", "R"): _make_vstore(False),
        (Op.VSTORE, "MA", "R"): _make_vstore(True),
        (Op.VSTORE512, "MB", "R"): _make_vstore(False),
        (Op.VSTORE512, "MA", "R"): _make_vstore(True),
        (Op.VZEROUPPER, "N", "N"): _nop,
        (Op.CALLRT, "I", "N"): _callrt,
        (Op.OUT, "R", "N"): _out_r,
        (Op.OUT, "I", "N"): _out_i,
        (Op.EXIT, "I", "N"): _exit_i,
        (Op.EXIT, "R", "N"): _exit_r,
        (Op.EXIT, "N", "N"): _exit_n,
    }
    for alu_op, fn in _ALU_FNS.items():
        variants = _make_alu(fn)
        table[(alu_op, "R", "R")] = variants["RR"]
        table[(alu_op, "R", "I")] = variants["RI"]
        table[(alu_op, "R", "MB")] = variants["R,MB"]
        table[(alu_op, "R", "MA")] = variants["R,MA"]
        table[(alu_op, "MB", "R")] = variants["MB,R"]
        table[(alu_op, "MB", "I")] = variants["MB,I"]
    for name, cond in _CONDITIONS.items():
        table[(Op[f"SET{name}"], "R", "N")] = _make_setcc(cond)
        table[(Op[f"J{name}"], "I", "N")] = _make_jcc(cond)
    return table


HANDLERS: Dict[Tuple[Op, str, str], Handler] = _build_handler_table()

#: Branch-family opcodes whose immediate targets are pre-wired to MicroOps.
_DIRECT_BRANCH_OPS = frozenset(
    {Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.CALL}
)

#: Opcodes that end a basic block: control transfers (taken or not),
#: halts, traps, and runtime-service calls (whose host code may remap
#: pages, invalidating fetch memoization for whatever follows).  The
#: block-recovery tier (:mod:`repro.machine.blocks`) splits on these and
#: on every direct branch target, so a block is a maximal straight-line
#: run — entered only at its head, left only at its last micro-op.
TERMINATOR_OPS = frozenset(
    {
        Op.JMP,
        Op.JE,
        Op.JNE,
        Op.JL,
        Op.JLE,
        Op.JG,
        Op.JGE,
        Op.CALL,
        Op.RET,
        Op.CALLRT,
        Op.EXIT,
        Op.TRAP,
    }
)


def _kind(operand) -> str:
    """Classify an operand for handler dispatch (layout-independent)."""
    if operand is None:
        return "N"
    cls = operand.__class__
    if cls is Reg:
        return "R"
    if cls is Imm:
        return "I"
    if cls is Mem:
        if operand.index is not None:
            return "MX"
        return "MA" if operand.base is None else "MB"
    return "O"  # Label or malformed: generic handler raises at execution


def select_handler(instr: Instruction) -> Handler:
    """Pick the execution handler for one instruction (the dispatch decision)."""
    handler = HANDLERS.get((instr.op, _kind(instr.a), _kind(instr.b)))
    return handler if handler is not None else GENERIC[instr.op]


# ---------------------------------------------------------------------------
# Decode cache: one template table per binary content fingerprint.
# ---------------------------------------------------------------------------


class DecodedProgram:
    """Layout-independent decode of one binary: a handler per instruction."""

    __slots__ = ("handlers",)

    def __init__(self, handlers: List[Handler]):
        self.handlers = handlers


#: (module_fingerprint, config_digest) -> DecodedProgram.  Mirrors the
#: engine's compile-cache key, so each distinct binary decodes once per
#: session regardless of how many Binary instances or processes exist.
_DECODE_CACHE: Dict[Tuple[str, str], DecodedProgram] = {}

#: Observability counters for the decode cache (asserted by tests).
DECODE_STATS = {"decodes": 0, "cache_hits": 0}


def decode_binary(binary) -> DecodedProgram:
    """Return (and cache) the micro-op template table for ``binary``."""
    fingerprint = binary.module_fingerprint
    digest = binary.config_digest
    key = (fingerprint, digest) if fingerprint and digest else None
    if key is not None:
        cached = _DECODE_CACHE.get(key)
        if cached is not None:
            DECODE_STATS["cache_hits"] += 1
            return cached
    else:
        cached = getattr(binary, "_decoded_program", None)
        if cached is not None:
            DECODE_STATS["cache_hits"] += 1
            return cached
    DECODE_STATS["decodes"] += 1
    decoded = DecodedProgram([select_handler(instr) for _, instr in binary.text])
    if key is not None:
        _DECODE_CACHE[key] = decoded
    else:
        binary._decoded_program = decoded
    return decoded


def clear_decode_cache() -> None:
    """Drop all cached decodes (test isolation helper)."""
    _DECODE_CACHE.clear()
    DECODE_STATS["decodes"] = 0
    DECODE_STATS["cache_hits"] = 0


# ---------------------------------------------------------------------------
# Bind: resolve templates against one loaded process and one cost model.
# ---------------------------------------------------------------------------


def _bind(
    items: List[Tuple[int, Instruction]],
    handlers: List[Handler],
    costs,
    memory,
) -> BoundProgram:
    op_units = costs.op_unit_costs
    line_size = costs.icache_line
    index: Dict[int, MicroOp] = {}
    uops: List[MicroOp] = []
    for (addr, instr), handler in zip(items, handlers):
        a, b = instr.a, instr.b
        # Post-rebase sanity: an unresolved symbolic immediate (outside
        # CALLRT) must fault through the reference operand path.
        if (
            isinstance(a, Imm)
            and a.symbol is not None
            and instr.op is not Op.CALLRT
        ) or (isinstance(b, Imm) and b.symbol is not None):
            handler = GENERIC[instr.op]
        u = MicroOp()
        u.rip = addr
        u.size = instr.size
        u.next_rip = addr + instr.size
        u.op = instr.op
        u.tag = instr.tag
        u.instr = instr
        u.base_cost = op_units[instr.op]
        u.has_mem = isinstance(a, Mem) or isinstance(b, Mem)
        u.lines = tuple(line_span(addr, instr.size, line_size))
        u.handler = handler
        u.next_u = None
        u.target = None
        u.a_reg = int(a) if isinstance(a, Reg) else 0
        u.b_reg = int(b) if isinstance(b, Reg) else 0
        if isinstance(b, Imm) and b.symbol is None:
            u.imm = b.value & MASK64
        elif isinstance(a, Imm) and a.symbol is None:
            u.imm = a.value & MASK64
        else:
            u.imm = 0
        if isinstance(a, Mem):
            u.a_base = None if a.base is None else int(a.base)
            u.a_off = (
                a.offset & MASK64
                if a.base is None and a.index is None
                else a.offset
            )
        else:
            u.a_base = None
            u.a_off = 0
        if isinstance(b, Mem):
            u.b_base = None if b.base is None else int(b.base)
            u.b_off = (
                b.offset & MASK64
                if b.base is None and b.index is None
                else b.offset
            )
        else:
            u.b_base = None
            u.b_off = 0
        u.mem = memory
        u.sym = a.symbol if isinstance(a, Imm) else None
        u.fetch_epoch = -1
        index[addr] = u
        uops.append(u)
    # Second pass: wire fall-through links and direct branch targets.
    for u in uops:
        u.next_u = index.get(u.next_rip)
        if u.op in _DIRECT_BRANCH_OPS:
            a = u.instr.a
            if isinstance(a, Imm) and a.symbol is None:
                tgt = a.value & MASK64
                u.target = index.get(tgt, tgt)
    return BoundProgram(index, uops)


def clone_bound_program(program: BoundProgram, memory) -> BoundProgram:
    """Rebind ``program`` to another process's memory without re-binding.

    Sound only when the target process shares the source's binary *and*
    layout: every pre-resolved field (rips, absolute operand addresses,
    branch targets, immediates) is layout-derived and therefore identical,
    so only the two per-process slots change — ``mem`` points at the new
    process's memory and ``fetch_epoch`` (per-run i-cache fetch state)
    resets.  Each clone owns private micro-ops, so concurrent variants in
    a lockstep group never share mutable fetch state.

    This skips template resolution and operand classification entirely,
    which is what lets :class:`~repro.defenses.lockstep.LockstepGroup`
    amortize decode *and* bind across N replicas of one image.
    """
    source = program.index
    index: Dict[int, MicroOp] = {}
    for addr, u in source.items():
        c = MicroOp()
        c.rip = u.rip
        c.next_rip = u.next_rip
        c.size = u.size
        c.op = u.op
        c.tag = u.tag
        c.instr = u.instr
        c.base_cost = u.base_cost
        c.has_mem = u.has_mem
        c.lines = u.lines
        c.handler = u.handler
        c.a_reg = u.a_reg
        c.b_reg = u.b_reg
        c.imm = u.imm
        c.a_base = u.a_base
        c.a_off = u.a_off
        c.b_base = u.b_base
        c.b_off = u.b_off
        c.sym = u.sym
        c.mem = memory
        c.fetch_epoch = -1
        c.next_u = None
        c.target = None
        index[addr] = c
    for addr, u in source.items():
        c = index[addr]
        if u.next_u is not None:
            c.next_u = index[u.next_u.rip]
        target = u.target
        if isinstance(target, MicroOp):
            c.target = index[target.rip]
        else:
            c.target = target
    return BoundProgram(index, [index[u.rip] for u in program.order])


def get_bound_program(process, costs) -> BoundProgram:
    """Bound micro-op table for ``process`` under ``costs``, cached per pair."""
    cache = process.uop_programs
    key = id(costs)
    entry = cache.get(key)
    if entry is not None and entry[0] is costs:
        return entry[1]
    binary = process.binary
    items: Optional[List[Tuple[int, Instruction]]] = None
    handlers: Optional[List[Handler]] = None
    if binary is not None and binary.text:
        decoded = decode_binary(binary)
        text_base = process.text_base
        instructions = process.instructions
        try:
            candidate = [
                (text_base + offset, instructions[text_base + offset])
                for offset, _ in binary.text
            ]
        except KeyError:
            candidate = None
        if candidate is not None and len(candidate) == len(instructions):
            items = candidate
            handlers = decoded.handlers
    if items is None:
        # No binary metadata (hand-built process) or the instruction index
        # diverged from the binary text: decode this process directly.
        items = list(process.instructions.items())
        handlers = [select_handler(instr) for _, instr in items]
    program = _bind(items, handlers, costs, process.memory)
    cache[key] = (costs, program)
    return program
