"""A small debugger over the CPU trace hook.

Supports breakpoints (by address or symbol), single-stepping, and memory
watchpoints.  Execution state lives in the wrapped CPU, so a debugging
session can alternate between stepping, running to breakpoints, and
inspecting memory — the tooling used by the race-window ablation and
handy for diagnosing diversified binaries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.machine.cpu import CPU, ExecutionResult
from repro.machine.isa import Instruction


class _Stop(Exception):
    """Internal control-flow signal: pause execution before `rip`."""


class Debugger:
    """Wraps a CPU with breakpoints, stepping, and watchpoints."""

    def __init__(self, cpu: CPU):
        if cpu.trace_fn is not None:
            raise ValueError("CPU already has a trace function installed")
        self.cpu = cpu
        self.breakpoints: Set[int] = set()
        self.watchpoints: Dict[int, int] = {}  # address -> last seen value
        self.watch_hits: List[Dict] = []
        self.result = ExecutionResult()
        self._steps_left: Optional[int] = None
        self._armed = False
        self._started = False
        self._finished = False
        self._skip_breakpoint_once = False
        cpu.trace_fn = self._trace

    # -- configuration ----------------------------------------------------

    def add_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address)

    def break_at(self, symbol: str) -> int:
        """Breakpoint at a symbol; returns the resolved address."""
        address = self.cpu.process.symbols[symbol]
        self.add_breakpoint(address)
        return address

    def remove_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    def add_watchpoint(self, address: int) -> None:
        self.watchpoints[address] = self.cpu.process.memory.load_word_raw(address)

    # -- execution ----------------------------------------------------------

    def _trace(self, cpu: CPU, rip: int, instr: Instruction) -> None:
        for address, old in list(self.watchpoints.items()):
            new = cpu.process.memory.load_word_raw(address)
            if new != old:
                self.watch_hits.append(
                    {"address": address, "old": old, "new": new, "rip": rip}
                )
                self.watchpoints[address] = new
        if not self._armed:
            return
        if self._steps_left is not None:
            if self._steps_left == 0:
                self._skip_breakpoint_once = rip in self.breakpoints
                raise _Stop()
            self._steps_left -= 1
        elif rip in self.breakpoints and self._started and not self._skip_breakpoint_once:
            self._skip_breakpoint_once = True
            raise _Stop()
        else:
            self._skip_breakpoint_once = False
        self._started = True

    def _resume(self) -> bool:
        """Run until the next stop; returns True if the program finished."""
        entry = self.cpu.rip if self._started else None
        try:
            self.cpu.run(entry=entry, result=self.result)
        except _Stop:
            return False
        self._finished = True
        return True

    def cont(self) -> bool:
        """Continue to the next breakpoint (or program exit)."""
        self._armed = True
        self._steps_left = None
        return self._resume()

    def step(self, count: int = 1) -> bool:
        """Execute ``count`` instructions, then stop."""
        self._armed = True
        self._steps_left = count
        finished = self._resume()
        self._steps_left = None
        return finished

    # -- inspection --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def rip(self) -> int:
        return self.cpu.rip

    def current_function(self) -> Optional[str]:
        process = self.cpu.process
        if process.binary is None:
            return None
        return process.binary.function_at_offset(self.rip - process.text_base)

    def read_words(self, address: int, count: int) -> List[int]:
        memory = self.cpu.process.memory
        return [memory.load_word_raw(address + 8 * k) for k in range(count)]
