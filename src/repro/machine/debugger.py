"""A single-stepping debugger over the backend ``step`` primitive.

Supports breakpoints (by address or symbol), single-stepping, and memory
watchpoints.  The debugger drives a :class:`MachineState` explicitly
through :meth:`ExecutionBackend.step` — it does not occupy the trace
hook, so profilers and test spies can ride ``trace_fn`` unchanged while
a debugging session is active.

Because backend stepping is byte-identical to uninterrupted execution
(same counters, same float ``cycles`` fold, same faults — see
:mod:`repro.machine.backends`), a debugged run's accumulated
:class:`ExecutionResult` now *equals* the undebugged run's exactly.
Historical note: the previous trace-hook implementation aborted out of
the interpreter loop with an internal exception after the stopped-at
instruction had already been fetched and counted, so every stop inflated
the instruction count by one and resuming re-fetched the same
instruction.  The step-based debugger has no such refetch — stopping is
simply not-yet-executing.

The wrapped target can be a full :class:`~repro.machine.cpu.CPU` (its
bound backend is used) or a bare :class:`MachineState` plus a backend
name — the tooling used by the race-window ablation and handy for
diagnosing diversified binaries.

Stepping composes with the ``jit`` backend through its deopt contract: a
one-instruction step slice can never satisfy a compiled block prolog's
folded instruction allowance, so stepped segments run interpreter-exact
and a later ``cont`` re-enters compiled code at the next block head —
with identical counters either way (``tests/test_jit.py`` holds a
breakpointed, stepped jit session byte-identical to ``fast``, including
through BTRA-displaced returns).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import MachineError
from repro.machine.cpu import ExecutionResult
from repro.machine.state import MachineState


class Debugger:
    """Wraps a machine state with breakpoints, stepping, and watchpoints."""

    def __init__(self, target: MachineState, *, backend: Optional[str] = None):
        from repro.machine.backends import DEFAULT_BACKEND, get_backend

        # One driver per state: a second debugger would fight the first
        # over stepping and fetch state.  (Passive trace hooks — the
        # profiler, test spies — may still chain on ``trace_fn``.)
        if getattr(target, "debugger_attached", False):
            raise ValueError("a debugger is already attached to this CPU")
        target.debugger_attached = True
        self.state = target
        #: Back-compat alias: existing tooling reads ``debugger.cpu``.
        self.cpu = target
        name = backend if backend is not None else getattr(target, "backend_name", None)
        self._backend = get_backend(name if name is not None else DEFAULT_BACKEND)
        self._program = self._backend.prepare(target)
        self.breakpoints: Set[int] = set()
        self.watchpoints: Dict[int, int] = {}  # address -> last seen value
        self.watch_hits: List[Dict] = []
        self.result = ExecutionResult()
        self._started = False
        self._finished = False

    # -- configuration ----------------------------------------------------

    def add_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address)

    def break_at(self, symbol: str) -> int:
        """Breakpoint at a symbol; returns the resolved address."""
        address = self.state.process.symbols[symbol]
        self.add_breakpoint(address)
        return address

    def remove_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    def add_watchpoint(self, address: int) -> None:
        self.watchpoints[address] = self.state.process.memory.load_word_raw(address)

    # -- execution ----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        entry = self.state.process.entry_point
        if entry is None:
            raise MachineError("process has no entry point")
        self.state.rip = entry
        self.state._halted = False
        self._started = True

    def _check_watchpoints(self) -> None:
        if not self.watchpoints:
            return
        rip = self.state.rip
        memory = self.state.process.memory
        for address, old in list(self.watchpoints.items()):
            new = memory.load_word_raw(address)
            if new != old:
                self.watch_hits.append(
                    {"address": address, "old": old, "new": new, "rip": rip}
                )
                self.watchpoints[address] = new

    def _step_one(self) -> bool:
        """Advance exactly one instruction; returns True on program exit."""
        finished = self._backend.step(self._program, self.state, self.result, 1)
        self._check_watchpoints()
        if finished:
            self._finished = True
        return finished

    def cont(self) -> bool:
        """Continue to the next breakpoint (or program exit).

        Stops *before* executing a breakpointed instruction (``rip``
        parks on the breakpoint address); the next ``cont``/``step``
        executes it first, so resuming never re-fetches anything.
        """
        self._ensure_started()
        while True:
            if self._step_one():
                return True
            if self.state.rip in self.breakpoints:
                return False

    def step(self, count: int = 1) -> bool:
        """Execute ``count`` instructions, then stop.  Returns True if the
        program finished within the allotted steps."""
        self._ensure_started()
        if not self.watchpoints:
            finished = self._backend.step(self._program, self.state, self.result, count)
            if finished:
                self._finished = True
            return finished
        for _ in range(count):
            if self._step_one():
                return True
        return False

    # -- inspection --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def rip(self) -> int:
        return self.state.rip

    def current_function(self) -> Optional[str]:
        process = self.state.process
        if process.binary is None:
            return None
        return process.binary.function_at_offset(self.rip - process.text_base)

    def read_words(self, address: int, count: int) -> List[int]:
        memory = self.state.process.memory
        return [memory.load_word_raw(address + 8 * k) for k in range(count)]
