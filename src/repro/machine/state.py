"""Architectural state as a first-class value.

:class:`MachineState` owns everything a run mutates — the sixteen general
registers, the vector registers, ``rip``, the compare flag, the shadow
stack, the i-cache, the halt latch — plus the handles execution needs (the
:class:`~repro.machine.process.Process` whose memory it reads and writes,
the :class:`~repro.machine.costs.MachineCosts` model) and the knobs that
parameterize interpretation (alignment checking, instruction budget, tag
attribution, the trace hook).

Execution itself lives elsewhere: a *program* (the process's decoded
instruction index, or a bound micro-op program) plus a backend
(:mod:`repro.machine.backends`) drive a state forward.  One decoded
program can therefore drive any number of states — the mechanism behind
:class:`repro.defenses.lockstep.LockstepGroup`'s N-variant execution —
and a state can be handed between drivers (the debugger single-steps the
same state a backend later runs to completion).

``CPU`` (:mod:`repro.machine.cpu`) subclasses this with a backend binding
and the classic ``run()`` entry point, so every existing trace hook,
runtime service, and micro-op handler keeps receiving the object it
always has: the state *is* the ``cpu`` argument of those callbacks.

Snapshots
---------

:meth:`clone` captures the architectural state — registers, flags,
shadow stack, i-cache contents *and* hit/miss counters, halt latch —
into a detached copy; :meth:`restore` copies a snapshot back in place.
The process handle (and with it memory) is shared, not copied: memory is
owned by the process, and write-effects are not part of the
architectural snapshot.  Within that contract, execution resumed from
any point is byte-identical to uninterrupted execution on every
registered backend (``tests/test_state.py`` proves it property-based).
The ``jit`` backend honours this by construction: a resume address that
lands mid-block — a debugger hand-off, a BTRA-displaced return — takes
its deopt path onto the interpreter for exactly the block residue, so
stepping a state and running it produce the same trajectory.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import InvalidInstruction
from repro.machine.costs import MachineCosts
from repro.machine.icache import ICache
from repro.machine.isa import Imm, Mem, Reg
from repro.machine.process import Process
from repro.numeric import MASK64

__all__ = ["MachineState"]


class MachineState:
    """The architectural state of one executing variant.

    Mutable execution state lives here; interpretation lives in the
    execution backends.  All attribute names are part of the handler
    calling convention (micro-op handlers, trace hooks, and runtime
    services receive this object), so they are stable API.
    """

    def __init__(
        self,
        process: Process,
        costs: MachineCosts,
        *,
        check_alignment: bool = True,
        instruction_budget: int = 50_000_000,
        count_opcodes: bool = False,
        trace_fn=None,
        shadow_stack: bool = False,
        attribute_tags: bool = False,
    ):
        self.process = process
        self.costs = costs
        self.check_alignment = check_alignment
        self.instruction_budget = instruction_budget
        self.count_opcodes = count_opcodes
        #: Backward-edge CFI (Section 8.2 comparison): calls push the
        #: return address onto a protected shadow stack; a ret whose target
        #: disagrees raises ShadowStackViolation.
        self.shadow_stack_enabled = shadow_stack
        self.shadow_stack: List[int] = []
        #: Attribute cycles to instruction tags (overhead decomposition).
        self.attribute_tags = attribute_tags
        #: Optional per-instruction hook ``trace_fn(state, rip, instr)``,
        #: called before execution.  Debugging/analysis only (it sees the
        #: machine state the instruction will observe).
        self.trace_fn = trace_fn
        self.icache = ICache(costs.icache_size, costs.icache_line, costs.icache_ways)
        self.regs: List[int] = [0] * 16
        self.regs[Reg.RSP] = process.layout.stack_top & ~0xF
        self.vregs: List[bytes] = [bytes(32)] * 4
        self.rip = 0
        self._cmp = 0  # signed result of the last CMP/TEST
        self._halted = False
        self._exit_code = 0
        #: Exactly one driver may step this state (the debugger claims it);
        #: passive trace hooks chain on ``trace_fn`` instead.
        self.debugger_attached = False

    # -- register access ----------------------------------------------------

    def get_reg(self, reg: Reg) -> int:
        return self.regs[reg]

    def set_reg(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value & MASK64

    # -- operand evaluation -------------------------------------------------

    def _mem_address(self, operand: Mem) -> int:
        addr = operand.offset
        if operand.base is not None:
            addr += self.regs[operand.base]
        if operand.index is not None:
            addr += self.regs[operand.index] * operand.scale
        return addr & MASK64

    def _read_operand(self, operand) -> int:
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                raise InvalidInstruction(f"unresolved symbol {operand.symbol!r} at runtime")
            return operand.value & MASK64
        if isinstance(operand, Mem):
            return self.process.memory.read_word(self._mem_address(operand))
        raise InvalidInstruction(f"cannot read operand {operand!r}")

    def _write_operand(self, operand, value: int) -> None:
        if isinstance(operand, Reg):
            self.regs[operand] = value & MASK64
        elif isinstance(operand, Mem):
            self.process.memory.write_word(self._mem_address(operand), value)
        else:
            raise InvalidInstruction(f"cannot write operand {operand!r}")

    def _branch_target(self, operand) -> int:
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                raise InvalidInstruction(f"unresolved branch target {operand.symbol!r}")
            return operand.value & MASK64
        if isinstance(operand, Reg):
            return self.regs[operand]
        if isinstance(operand, Mem):
            return self.process.memory.read_word(self._mem_address(operand))
        raise InvalidInstruction(f"bad branch target {operand!r}")

    # -- snapshot / restore --------------------------------------------------

    #: Mutable architectural fields a snapshot must deep-copy.  The process
    #: (and its memory) is deliberately *shared*: write-effects belong to
    #: the process, not the architectural snapshot.
    _SNAPSHOT_SCALARS = ("rip", "_cmp", "_halted", "_exit_code")

    def clone(self) -> "MachineState":
        """A detached copy of the architectural state.

        The copy shares the process/memory handle, cost model, and trace
        hook, but owns private copies of every mutable architectural
        field — registers, vector registers, shadow stack, and the
        i-cache including its hit/miss counters — so stepping the copy
        (or the original) cannot perturb the other.
        """
        twin = MachineState.__new__(type(self))
        twin.__dict__.update(self.__dict__)
        twin.regs = list(self.regs)
        twin.vregs = list(self.vregs)
        twin.shadow_stack = list(self.shadow_stack)
        twin.icache = self.icache.clone()
        return twin

    def restore(self, snapshot: "MachineState") -> None:
        """Copy ``snapshot``'s architectural state back into this state.

        The inverse of :meth:`clone`: after ``state.restore(snap)`` the
        state's registers, flags, shadow stack, i-cache, and halt latch
        equal the snapshot's.  Memory is untouched — callers replaying
        execution are responsible for the process side of the world.
        """
        self.regs = list(snapshot.regs)
        self.vregs = list(snapshot.vregs)
        self.shadow_stack = list(snapshot.shadow_stack)
        self.icache = snapshot.icache.clone()
        for name in self._SNAPSHOT_SCALARS:
            setattr(self, name, getattr(snapshot, name))

    def state_equal(self, other: "MachineState") -> bool:
        """Architectural equality (registers, flags, shadow stack, i-cache
        counters) — the predicate the snapshot property tests assert."""
        return (
            self.regs == other.regs
            and self.vregs == other.vregs
            and self.shadow_stack == other.shadow_stack
            and self.rip == other.rip
            and self._cmp == other._cmp
            and self._halted == other._halted
            and self._exit_code == other._exit_code
            and self.icache.hits == other.icache.hits
            and self.icache.misses == other.icache.misses
        )
