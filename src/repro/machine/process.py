"""Process image: sections, ASLR, runtime services, and accounting.

A :class:`Process` owns the virtual memory, the address-space layout, the
decoded instruction index for the text section, the output stream, and the
table of runtime services ("glibc" functions such as ``malloc`` that guest
code reaches through the ``CALLRT`` instruction).

The layout mirrors a PIE binary on x86-64 Linux: text and data live in the
``0x55xx...`` range, the heap in its own region above them, and the stack
near ``0x7ffc...``.  The distinct value ranges matter: AOCR's statistical
analysis clusters leaked words by value range to pick out heap pointers
(Section 2.3), and BTDPs must fall into the same cluster as benign heap
pointers (Section 4.2).  ASLR slides each region independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import MachineError
from repro.machine.isa import Instruction
from repro.machine.memory import Memory, PAGE_SIZE, Perm
from repro.rng import DiversityRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.cpu import CPU


# Region anchors (pre-ASLR).  Chosen so text/data, heap, and stack words are
# separable by value range, like on real Linux.
TEXT_ANCHOR = 0x5555_5540_0000
HEAP_ANCHOR = 0x6200_0000_0000
STACK_ANCHOR = 0x7FFC_0000_0000

#: Maximum ASLR slide per region, in pages.
ASLR_SLIDE_PAGES = 0x4000


@dataclass
class AddressSpaceLayout:
    """Resolved (post-ASLR) region bases and sizes for one process."""

    text_base: int
    text_size: int
    data_base: int
    data_size: int
    heap_base: int
    heap_size: int
    stack_base: int  # lowest mapped stack address
    stack_size: int

    @property
    def stack_top(self) -> int:
        """Initial stack pointer (highest usable address, 16-byte aligned)."""
        return self.stack_base + self.stack_size

    def region_of(self, address: int) -> Optional[str]:
        """Classify an address as text/data/heap/stack, or ``None``."""
        if self.text_base <= address < self.text_base + self.text_size:
            return "text"
        if self.data_base <= address < self.data_base + self.data_size:
            return "data"
        if self.heap_base <= address < self.heap_base + self.heap_size:
            return "heap"
        if self.stack_base <= address < self.stack_base + self.stack_size:
            return "stack"
        return None


def randomize_layout(
    rng: DiversityRng,
    *,
    text_size: int,
    data_size: int,
    heap_size: int = 8 * 1024 * 1024,
    stack_size: int = 1024 * 1024,
    aslr: bool = True,
) -> AddressSpaceLayout:
    """Build a layout with independent per-region ASLR slides."""

    def slide(label: str) -> int:
        if not aslr:
            return 0
        return rng.child(f"aslr:{label}").randint(0, ASLR_SLIDE_PAGES) * PAGE_SIZE

    def round_up(n: int) -> int:
        return (n + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)

    text_base = TEXT_ANCHOR + slide("text")
    text_size = round_up(max(text_size, PAGE_SIZE))
    # One unmapped guard gap page between text and data.
    data_base = text_base + text_size + PAGE_SIZE
    data_size = round_up(max(data_size, PAGE_SIZE))
    heap_base = HEAP_ANCHOR + slide("heap")
    stack_base = STACK_ANCHOR + slide("stack")
    return AddressSpaceLayout(
        text_base=text_base,
        text_size=text_size,
        data_base=data_base,
        data_size=data_size,
        heap_base=heap_base,
        heap_size=round_up(heap_size),
        stack_base=stack_base,
        stack_size=round_up(stack_size),
    )


RuntimeService = Callable[["Process", "CPU"], int]


class Process:
    """A loaded program instance: memory, instructions, services, output."""

    def __init__(self, layout: AddressSpaceLayout, *, execute_only_text: bool = True):
        self.layout = layout
        self.memory = Memory()
        self.execute_only_text = execute_only_text
        # Address -> decoded instruction; populated by the loader.
        self.instructions: Dict[int, Instruction] = {}
        self.entry_point: Optional[int] = None
        self.symbols: Dict[str, int] = {}
        self.output: List[int] = []
        self.exit_code: Optional[int] = None
        self._services: Dict[str, RuntimeService] = {}
        self._peak_resident = 0
        # Bound micro-op programs, one per cost model, filled lazily by
        # repro.machine.uops.get_bound_program for the fast backend.
        self.uop_programs: Dict[int, tuple] = {}
        # Set by the loader:
        self.binary = None  # the Binary this process was loaded from
        self.allocator = None  # repro.heap.Allocator over the heap region
        self.text_base = layout.text_base
        self.data_base = layout.data_base

        text_perm = Perm.X if execute_only_text else Perm.RX
        self.memory.map_region(layout.text_base, layout.text_size, text_perm)
        self.memory.map_region(layout.data_base, layout.data_size, Perm.RW)
        self.memory.map_region(layout.heap_base, layout.heap_size, Perm.RW)
        self.memory.map_region(layout.stack_base, layout.stack_size, Perm.RW)
        self.note_resident()

    # -- replica cloning -----------------------------------------------------

    def clone(self) -> "Process":
        """Fork an identical replica: same binary, same layout, private
        memory/allocator/output/services.

        The decoded instruction index and the symbol table are immutable
        after loading, so they are shared; everything a run mutates
        (memory pages, allocator state, the output stream, the service
        table, bound micro-op programs) is copied or reset.  Cloning a
        loaded process is an order of magnitude cheaper than re-loading
        the binary — it skips section mapping, instruction rebasing, and
        the runtime constructors — which is how N-replica lockstep groups
        keep per-variant setup cost below the fixed pipeline cost."""
        clone = Process.__new__(Process)
        clone.layout = self.layout
        clone.memory = self.memory.clone()
        clone.execute_only_text = self.execute_only_text
        clone.instructions = self.instructions
        clone.entry_point = self.entry_point
        clone.symbols = self.symbols
        clone.output = list(self.output)
        clone.exit_code = self.exit_code
        clone._services = dict(self._services)
        clone._peak_resident = self._peak_resident
        clone.uop_programs = {}
        clone.binary = self.binary
        clone.allocator = (
            None if self.allocator is None else self.allocator.clone(clone.memory)
        )
        clone.text_base = self.text_base
        clone.data_base = self.data_base
        runtime_info = getattr(self, "r2c_runtime", None)
        if runtime_info is not None:
            clone.r2c_runtime = dict(runtime_info)
        return clone

    # -- instruction index ---------------------------------------------------

    def place_instruction(self, address: int, instr: Instruction) -> None:
        if address in self.instructions:
            raise MachineError(f"instruction overlap at {address:#x}")
        self.instructions[address] = instr

    def instruction_at(self, address: int) -> Optional[Instruction]:
        return self.instructions.get(address)

    # -- runtime services ------------------------------------------------------

    def register_service(self, name: str, fn: RuntimeService) -> None:
        """Expose a host-side "libc" function to guest code via CALLRT."""
        self._services[name] = fn

    def service(self, name: str) -> RuntimeService:
        try:
            return self._services[name]
        except KeyError:
            raise MachineError(f"unknown runtime service {name!r}") from None

    # -- accounting -------------------------------------------------------------

    def note_resident(self) -> int:
        """Update and return the peak resident-set size (maxrss analogue)."""
        resident = self.memory.resident_bytes()
        if resident > self._peak_resident:
            self._peak_resident = resident
        return resident

    @property
    def max_rss(self) -> int:
        return self._peak_resident
