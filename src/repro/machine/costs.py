"""Cycle-cost presets for the four evaluation machines.

The paper evaluates on AMD EPYC Rome 7H12, Intel i9-9900K, AMD Threadripper
3970X, and Intel Xeon Platinum 8358 (Section 6.1) and observes per-machine
divergence (Figure 6): the Xeon shows the highest overall overhead, omnetpp
suffers most there, while xalancbmk does better on the Intel parts than on
AMD.  We model each machine as a set of per-opcode cycle costs plus an
i-cache geometry and miss penalty.  The divergence mechanisms encoded here:

* store/push throughput differs between the microarchitectures (Zen 2 has
  two store AGUs; Coffee Lake one store port) — affects the push-based
  BTRA setup;
* AVX2 store cost and the ``vzeroupper`` transition differ;
* the miss penalty scales inversely with clock (the 2.6 GHz Xeon pays more
  relative cycles per L2 round-trip than the 3.7 GHz Threadripper).

Absolute cycle values are model parameters, not microarchitectural truth;
only their ratios matter for reproducing overhead shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.machine.isa import Op

#: Integer cycle units per modeled cycle.  All cycle accounting is done in
#: exact integer units of 1/``CYCLE_UNIT`` cycles (0.01-cycle resolution):
#: integer addition is associative, so per-block folded cost totals, sliced
#: ``step()`` runs, and whole-program runs all accumulate bit-identical
#: totals regardless of how the additions are grouped — the property the
#: tier-2 code generator's per-block cost folding rests on.  Float
#: ``ExecutionResult.cycles`` is derived from the unit total at flush time
#: (one exact division), never accumulated in float.
CYCLE_UNIT = 100


def cycles_to_units(value: float) -> int:
    """Quantize a cycle cost to integer units (0.01-cycle resolution)."""
    return round(value * CYCLE_UNIT)


def _default_op_costs() -> Dict[Op, float]:
    return {
        Op.MOV: 1.0,
        Op.LEA: 1.0,
        Op.PUSH: 1.0,
        Op.POP: 1.0,
        Op.ADD: 1.0,
        Op.SUB: 1.0,
        Op.IMUL: 3.0,
        Op.IDIV: 20.0,
        Op.AND: 1.0,
        Op.OR: 1.0,
        Op.XOR: 1.0,
        Op.SHL: 1.0,
        Op.SHR: 1.0,
        Op.NEG: 1.0,
        Op.CMP: 1.0,
        Op.TEST: 1.0,
        Op.SETE: 1.0,
        Op.SETNE: 1.0,
        Op.SETL: 1.0,
        Op.SETLE: 1.0,
        Op.SETG: 1.0,
        Op.SETGE: 1.0,
        Op.JMP: 1.0,
        Op.JE: 1.5,
        Op.JNE: 1.5,
        Op.JL: 1.5,
        Op.JLE: 1.5,
        Op.JG: 1.5,
        Op.JGE: 1.5,
        Op.CALL: 2.0,
        Op.RET: 2.0,
        Op.NOP: 0.25,
        Op.TRAP: 0.25,
        Op.VLOAD: 2.0,
        Op.VSTORE: 2.0,
        Op.VLOAD512: 2.6,
        Op.VSTORE512: 2.6,
        Op.VZEROUPPER: 1.0,
        Op.CALLRT: 30.0,
        Op.OUT: 5.0,
        Op.EXIT: 1.0,
    }


@dataclass
class MachineCosts:
    """Per-machine cycle cost model.

    Attributes:
        name: preset identifier, e.g. ``"epyc-rome"``.
        op_costs: base cycles per opcode.
        mem_operand_extra: additional cycles when an instruction has a
            memory operand (address generation + L1d access).
        icache_size / icache_ways / icache_line: modeled L1i geometry
            (scaled to the synthetic workloads; see MACHINE_PRESETS).
        icache_miss_penalty: cycles charged per L1i line miss.
    """

    name: str
    op_costs: Dict[Op, float] = field(default_factory=_default_op_costs)
    mem_operand_extra: float = 0.5
    icache_size: int = 4 * 1024
    icache_ways: int = 8
    icache_line: int = 64
    icache_miss_penalty: float = 12.0

    @property
    def op_unit_costs(self) -> Dict[Op, int]:
        """``op_costs`` quantized to integer cycle units (cached)."""
        table = self.__dict__.get("_op_unit_costs")
        if table is None:
            table = {op: cycles_to_units(v) for op, v in self.op_costs.items()}
            self.__dict__["_op_unit_costs"] = table
        return table

    @property
    def mem_operand_extra_units(self) -> int:
        return cycles_to_units(self.mem_operand_extra)

    @property
    def icache_miss_penalty_units(self) -> int:
        return cycles_to_units(self.icache_miss_penalty)

    def with_overrides(self, **op_overrides: float) -> "MachineCosts":
        """Return a copy with the named opcode costs replaced.

        Keys are lower-case opcode names (``push=1.3``).
        """
        costs = dict(self.op_costs)
        for key, value in op_overrides.items():
            costs[Op[key.upper()]] = value
        return MachineCosts(
            name=self.name,
            op_costs=costs,
            mem_operand_extra=self.mem_operand_extra,
            icache_size=self.icache_size,
            icache_ways=self.icache_ways,
            icache_line=self.icache_line,
            icache_miss_penalty=self.icache_miss_penalty,
        )


def fold_cost(costs: "MachineCosts", op: Op, misses: int, has_mem: bool) -> int:
    """The exact per-instruction cycle charge, in integer units.

    Base cost plus ``misses * miss_penalty`` plus the memory-operand
    extra.  Because cycle units are integers the sum is associative: the
    tier-2 code generator folds any run of instructions into one literal
    and still produces the exact unit total the interpreter tiers
    accumulate one instruction at a time.
    """
    cost = costs.op_unit_costs[op]
    if misses:
        cost += misses * costs.icache_miss_penalty_units
    if has_mem:
        cost += costs.mem_operand_extra_units
    return cost


def costs_signature(costs: "MachineCosts") -> tuple:
    """A hashable content identity for a cost model.

    The compiled-code cache keys on this (not ``id``) so equal cost
    models — however constructed — share generated code.
    """
    return (
        costs.name,
        tuple(sorted((op.name, value) for op, value in costs.op_costs.items())),
        costs.mem_operand_extra,
        costs.icache_size,
        costs.icache_ways,
        costs.icache_line,
        costs.icache_miss_penalty,
    )


def _preset(name: str, *, miss_penalty: float, mem_extra: float, **ops: float) -> MachineCosts:
    base = MachineCosts(name=name, icache_miss_penalty=miss_penalty, mem_operand_extra=mem_extra)
    return base.with_overrides(**ops) if ops else base


#: The four machines of Section 6.1.
#:
#: The modeled L1i is 4 KiB, not the physical 32 KiB: the synthetic
#: workloads are ~100x smaller than real SPEC binaries, so the cache is
#: scaled down with them to preserve the code-footprint/cache ratio that
#: drives the push-vs-AVX gap (Section 7.1 attributes that gap to
#: instruction-cache pressure).
#:
#: The Intel presets charge more for the store-heavy BTRA traffic (call,
#: push, vector store) relative to plain ALU work than the Zen 2 presets
#: do — the divergence mechanism behind the paper's observation that the
#: webserver throughput cost is 12-13% on the i9 but only 3-4% on the AMD
#: machines (Section 6.2.4).
MACHINE_PRESETS: Dict[str, MachineCosts] = {
    # AMD EPYC Rome 7H12 @3.2 GHz — strong store throughput (two store
    # AGUs), cheap calls.
    "epyc-rome": _preset(
        "epyc-rome", miss_penalty=11.0, mem_extra=0.4,
        push=0.95, vstore=0.9, vload=0.8, vstore512=1.3, vload512=1.1, call=1.7, ret=1.7,
    ),
    # Intel i9-9900K @3.6 GHz — one store port; bursty stack writes and
    # call/ret traffic cost relatively more.
    "i9-9900k": _preset(
        "i9-9900k", miss_penalty=13.0, mem_extra=0.55,
        push=1.35, vstore=1.3, vload=1.0, vstore512=1.8, vload512=1.4, call=2.6, ret=2.6,
    ),
    # AMD Threadripper 3970X @3.7 GHz — Zen 2 like the EPYC, higher clock
    # (relatively cheaper misses).
    "tr-3970x": _preset(
        "tr-3970x", miss_penalty=10.0, mem_extra=0.4,
        push=0.95, vstore=0.9, vload=0.8, vstore512=1.3, vload512=1.1, call=1.7, ret=1.7,
    ),
    # Intel Xeon Platinum 8358 @2.6 GHz — low clock inflates relative miss
    # and store costs; the paper's worst-case machine (8.5% geomean).
    "xeon": _preset(
        "xeon", miss_penalty=15.0, mem_extra=0.6,
        push=1.45, vstore=1.4, vload=1.1, vstore512=1.9, vload512=1.5, call=2.7, ret=2.7,
    ),
}

DEFAULT_MACHINE = "epyc-rome"


def get_costs(name: str) -> MachineCosts:
    """Look up a preset by name, raising ``KeyError`` with the valid names."""
    try:
        return MACHINE_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; choose from {sorted(MACHINE_PRESETS)}") from None
