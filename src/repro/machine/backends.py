"""Execution backends: the dispatch/execute stages of the pipeline.

Architectural state lives in :class:`~repro.machine.state.MachineState`;
a backend owns the interpretation loop and takes a *(program, state)*
pair.  ``prepare(state)`` resolves the decoded program for that state's
process (cached per process, so N states over one binary decode once);
``execute(program, state, res)`` runs the state from ``state.rip`` to
completion; ``step(program, state, res, max_steps)`` advances at most
``max_steps`` instructions and returns whether the program has halted —
the primitive under the debugger's single-stepping and the lockstep
MVEE's batched N-variant scheduling.

Three implementations ship:

* :class:`ReferenceBackend` (``"reference"``) — the original monolithic
  interpreter loop, moved here verbatim.  Its program is the process's
  instruction index; it re-classifies operands and re-checks fetch
  permissions on every instruction and is the semantic baseline every
  other backend is measured against.
* :class:`FastBackend` (``"fast"``) — drives the pre-resolved micro-op
  stream produced by :mod:`repro.machine.uops`.  Operand dispatch, memory
  address recipes, instruction costs, and i-cache line spans were all
  resolved at decode/bind time, so the hot loop is a handler call plus
  cost bookkeeping.  Fetch-permission checks are memoized per micro-op
  against :attr:`Memory.perm_epoch`, which every mapping/protection
  change bumps.
* :class:`~repro.machine.jit.JitBackend` (``"jit"``) — the final stage
  of the progressive-lowering pipeline (tier 0: micro-ops; tier 1:
  basic-block CFG with superinstruction fusion,
  :mod:`repro.machine.blocks`; tier 2: one ``exec``-compiled Python
  function per block, :mod:`repro.machine.jit`).  Budget checks, cost
  folds, and i-cache accounting collapse into block prologs; anything
  the compiled form cannot express bit-identically deopts to the
  ``fast`` interpreter mid-run.

All backends must fill byte-identical :class:`ExecutionResult`\\ s —
same counters, same faults at the same ``rip``, same shadow-stack and
trace-hook behaviour.  Cycle accounting is carried in exact integer
units (``costs.CYCLE_UNIT`` units per cycle); because integer addition
is associative the grouping of the additions is immaterial — a backend
may charge per instruction, per ``step`` slice, or per folded basic
block and still land on the same total.  Float ``res.cycles`` is
*derived* from ``res.cycle_units`` at every flush (one exact division),
never accumulated in float, so a run advanced in arbitrary ``step``
slices accumulates, into one result, the exact bytes an uninterrupted
``execute`` produces.  The instruction budget counts
``res.instructions`` already accumulated — a fresh result reproduces
the historical per-call semantics bit-for-bit.
``tests/test_backends.py``, ``tests/test_state.py`` and the equivalence
suite hold them to all of this.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.errors import (
    BoobyTrapTriggered,
    ExecutionLimitExceeded,
    InvalidInstruction,
    MachineError,
    ShadowStackViolation,
    StackMisaligned,
)
from repro.machine.costs import CYCLE_UNIT
from repro.machine.cpu import UNTAGGED_TAG
from repro.machine.isa import Imm, Mem, Op, Reg, VECTOR_WORDS, WORD
from repro.machine.uops import (
    HALT,
    MicroOp,
    SYNC,
    clone_bound_program,
    get_bound_program,
)
from repro.numeric import MASK64, to_signed, truncated_div

__all__ = [
    "ExecutionBackend",
    "ReferenceBackend",
    "FastBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "register_backend",
]


class ExecutionBackend(Protocol):
    """A pluggable dispatch/execute stage over *(program, state)* pairs.

    ``prepare`` resolves a state's process into whatever program form the
    backend drives; ``execute`` runs from ``state.rip`` until EXIT or a
    fault, accumulating into ``res`` exactly like the reference loop
    (counters are flushed even when a fault propagates); ``step``
    advances at most ``max_steps`` instructions and returns True once
    the program has halted.
    """

    name: str

    def prepare(self, state):  # pragma: no cover - protocol signature
        ...

    def execute(self, program, state, res):  # pragma: no cover - protocol signature
        ...

    def step(self, program, state, res, max_steps: int):  # pragma: no cover
        ...

    def clone_program(self, program, state):  # pragma: no cover
        ...


class ReferenceBackend:
    """The original interpreter loop, preserved as the semantic baseline."""

    name = "reference"

    def prepare(self, state):
        """The reference program is the process's instruction index."""
        return state.process.instructions

    def clone_program(self, program, state):
        """Reference programs carry no per-process bindings; a "clone" is
        just the new state's own instruction index (free either way)."""
        return state.process.instructions

    def execute(self, program, state, res):
        self._drive(program, state, res, None)
        res.exit_code = state._exit_code
        state.process.exit_code = state._exit_code
        return res

    def step(self, program, state, res, max_steps: int) -> bool:
        if state._halted:
            return True
        self._drive(program, state, res, max_steps)
        if state._halted:
            res.exit_code = state._exit_code
            state.process.exit_code = state._exit_code
        return state._halted

    def _drive(self, program, cpu, res, max_steps: Optional[int]):
        # Local bindings for the hot loop.
        instructions = program
        op_units = cpu.costs.op_unit_costs
        mem_extra = cpu.costs.mem_operand_extra_units
        miss_penalty = cpu.costs.icache_miss_penalty_units
        icache_access = cpu.icache.access
        regs = cpu.regs
        memory = cpu.process.memory
        budget = cpu.instruction_budget - res.instructions
        count_ops = cpu.count_opcodes
        shadow = cpu.shadow_stack if cpu.shadow_stack_enabled else None
        attribute = cpu.attribute_tags
        tag_units = res.tag_cycle_units
        tag_counts = res.tag_counts

        remaining = max_steps
        executed = 0
        cycles = 0
        calls = 0
        rets = 0
        branches = 0
        taken = 0
        mem_ops = 0
        traps = 0

        try:
            while not cpu._halted:
                if remaining is not None:
                    if remaining == 0:
                        break
                    remaining -= 1
                rip = cpu.rip
                instr = instructions.get(rip)
                if instr is None:
                    memory.fetch_check(rip)
                    raise InvalidInstruction(f"no instruction at {rip:#x}")
                memory.fetch_check(rip, instr.size)

                executed += 1
                if executed > budget:
                    raise ExecutionLimitExceeded(
                        f"budget of {cpu.instruction_budget} instructions exceeded"
                    )

                if cpu.trace_fn is not None:
                    cpu.trace_fn(cpu, rip, instr)

                op = instr.op
                cost = op_units[op]
                misses = icache_access(rip, instr.size)
                if misses:
                    cost += misses * miss_penalty
                if isinstance(instr.a, Mem) or isinstance(instr.b, Mem):
                    cost += mem_extra
                    mem_ops += 1
                cycles += cost
                if attribute:
                    tag = instr.tag if instr.tag is not None else UNTAGGED_TAG
                    tag_units[tag] = tag_units.get(tag, 0) + cost
                    tag_counts[tag] = tag_counts.get(tag, 0) + 1
                if count_ops:
                    res.opcode_counts[op] = res.opcode_counts.get(op, 0) + 1

                next_rip = rip + instr.size

                if op is Op.MOV:
                    cpu._write_operand(instr.a, cpu._read_operand(instr.b))
                elif op is Op.PUSH:
                    rsp = (regs[Reg.RSP] - WORD) & MASK64
                    regs[Reg.RSP] = rsp
                    memory.write_word(rsp, cpu._read_operand(instr.a))
                elif op is Op.POP:
                    rsp = regs[Reg.RSP]
                    cpu._write_operand(instr.a, memory.read_word(rsp))
                    regs[Reg.RSP] = (rsp + WORD) & MASK64
                elif op is Op.ADD:
                    cpu._write_operand(
                        instr.a, cpu._read_operand(instr.a) + cpu._read_operand(instr.b)
                    )
                elif op is Op.SUB:
                    cpu._write_operand(
                        instr.a, cpu._read_operand(instr.a) - cpu._read_operand(instr.b)
                    )
                elif op is Op.IMUL:
                    cpu._write_operand(
                        instr.a,
                        to_signed(cpu._read_operand(instr.a)) * to_signed(cpu._read_operand(instr.b)),
                    )
                elif op is Op.IDIV:
                    divisor = to_signed(cpu._read_operand(instr.b))
                    if divisor == 0:
                        raise MachineError(f"division by zero at {rip:#x}")
                    dividend = to_signed(cpu._read_operand(instr.a))
                    cpu._write_operand(instr.a, truncated_div(dividend, divisor))
                elif op is Op.AND:
                    cpu._write_operand(
                        instr.a, cpu._read_operand(instr.a) & cpu._read_operand(instr.b)
                    )
                elif op is Op.OR:
                    cpu._write_operand(
                        instr.a, cpu._read_operand(instr.a) | cpu._read_operand(instr.b)
                    )
                elif op is Op.XOR:
                    cpu._write_operand(
                        instr.a, cpu._read_operand(instr.a) ^ cpu._read_operand(instr.b)
                    )
                elif op is Op.SHL:
                    cpu._write_operand(
                        instr.a, cpu._read_operand(instr.a) << (cpu._read_operand(instr.b) & 63)
                    )
                elif op is Op.SHR:
                    cpu._write_operand(
                        instr.a, (cpu._read_operand(instr.a) & MASK64) >> (cpu._read_operand(instr.b) & 63)
                    )
                elif op is Op.NEG:
                    cpu._write_operand(instr.a, -cpu._read_operand(instr.a))
                elif op is Op.LEA:
                    if not isinstance(instr.b, Mem):
                        raise InvalidInstruction("lea requires a memory operand")
                    cpu._write_operand(instr.a, cpu._mem_address(instr.b))
                elif op is Op.CMP:
                    cpu._cmp = to_signed(cpu._read_operand(instr.a)) - to_signed(
                        cpu._read_operand(instr.b)
                    )
                elif op is Op.TEST:
                    cpu._cmp = to_signed(
                        cpu._read_operand(instr.a) & cpu._read_operand(instr.b)
                    )
                elif op is Op.SETE:
                    cpu._write_operand(instr.a, 1 if cpu._cmp == 0 else 0)
                elif op is Op.SETNE:
                    cpu._write_operand(instr.a, 1 if cpu._cmp != 0 else 0)
                elif op is Op.SETL:
                    cpu._write_operand(instr.a, 1 if cpu._cmp < 0 else 0)
                elif op is Op.SETLE:
                    cpu._write_operand(instr.a, 1 if cpu._cmp <= 0 else 0)
                elif op is Op.SETG:
                    cpu._write_operand(instr.a, 1 if cpu._cmp > 0 else 0)
                elif op is Op.SETGE:
                    cpu._write_operand(instr.a, 1 if cpu._cmp >= 0 else 0)
                elif op is Op.JMP:
                    next_rip = cpu._branch_target(instr.a)
                    branches += 1
                    taken += 1
                elif op is Op.JE:
                    branches += 1
                    if cpu._cmp == 0:
                        next_rip = cpu._branch_target(instr.a)
                        taken += 1
                elif op is Op.JNE:
                    branches += 1
                    if cpu._cmp != 0:
                        next_rip = cpu._branch_target(instr.a)
                        taken += 1
                elif op is Op.JL:
                    branches += 1
                    if cpu._cmp < 0:
                        next_rip = cpu._branch_target(instr.a)
                        taken += 1
                elif op is Op.JLE:
                    branches += 1
                    if cpu._cmp <= 0:
                        next_rip = cpu._branch_target(instr.a)
                        taken += 1
                elif op is Op.JG:
                    branches += 1
                    if cpu._cmp > 0:
                        next_rip = cpu._branch_target(instr.a)
                        taken += 1
                elif op is Op.JGE:
                    branches += 1
                    if cpu._cmp >= 0:
                        next_rip = cpu._branch_target(instr.a)
                        taken += 1
                elif op is Op.CALL:
                    if cpu.check_alignment and regs[Reg.RSP] % 16 != 0:
                        raise StackMisaligned(
                            f"rsp={regs[Reg.RSP]:#x} not 16-byte aligned at call ({rip:#x})"
                        )
                    target = cpu._branch_target(instr.a)
                    rsp = (regs[Reg.RSP] - WORD) & MASK64
                    regs[Reg.RSP] = rsp
                    memory.write_word(rsp, next_rip)
                    if shadow is not None:
                        shadow.append(next_rip)
                    next_rip = target
                    calls += 1
                elif op is Op.RET:
                    rsp = regs[Reg.RSP]
                    next_rip = memory.read_word(rsp)
                    regs[Reg.RSP] = (rsp + WORD) & MASK64
                    if shadow is not None:
                        expected = shadow.pop() if shadow else 0
                        if expected != next_rip:
                            raise ShadowStackViolation(expected, next_rip)
                    rets += 1
                elif op is Op.NOP:
                    pass
                elif op is Op.TRAP:
                    traps += 1
                    raise BoobyTrapTriggered(rip)
                elif op is Op.VLOAD or op is Op.VLOAD512:
                    if not isinstance(instr.b, Mem):
                        raise InvalidInstruction("vload requires a memory source")
                    nbytes = WORD * (VECTOR_WORDS if op is Op.VLOAD else 2 * VECTOR_WORDS)
                    data = memory.read(cpu._mem_address(instr.b), nbytes)
                    cpu.vregs[instr.a - Reg.YMM0] = data
                elif op is Op.VSTORE or op is Op.VSTORE512:
                    if not isinstance(instr.a, Mem):
                        raise InvalidInstruction("vstore requires a memory destination")
                    memory.write(cpu._mem_address(instr.a), cpu.vregs[instr.b - Reg.YMM0])
                elif op is Op.VZEROUPPER:
                    pass
                elif op is Op.CALLRT:
                    if not isinstance(instr.a, Imm) or instr.a.symbol is None:
                        raise InvalidInstruction("callrt requires a service name")
                    fn = cpu.process.service(instr.a.symbol)
                    regs[Reg.RAX] = fn(cpu.process, cpu) & MASK64
                elif op is Op.OUT:
                    cpu.process.output.append(cpu._read_operand(instr.a))
                elif op is Op.EXIT:
                    cpu._exit_code = cpu._read_operand(instr.a) if instr.a is not None else 0
                    cpu._halted = True
                else:  # pragma: no cover - exhaustive over Op
                    raise InvalidInstruction(f"unimplemented opcode {op}")

                cpu.rip = next_rip
        finally:
            res.instructions += executed
            res.cycle_units += cycles
            res.cycles = res.cycle_units / CYCLE_UNIT
            if attribute and tag_units:
                res.tag_cycles = {tag: units / CYCLE_UNIT for tag, units in tag_units.items()}
            res.calls += calls
            res.rets += rets
            res.branches += branches
            res.branches_taken += taken
            res.mem_ops += mem_ops
            res.traps += traps
            res.icache_hits = cpu.icache.hits
            res.icache_misses = cpu.icache.misses
            res.output = cpu.process.output


def _missing(cpu, memory, address):
    """Fault path for control flow reaching a non-instruction address.

    Mirrors the reference loop exactly: ``rip`` rests at the invalid
    address, a fetch-permission fault (guard page, unmapped, execute-only
    violation) takes precedence over :class:`InvalidInstruction`.
    """
    cpu.rip = address
    memory.fetch_check(address)
    raise InvalidInstruction(f"no instruction at {address:#x}")


class FastBackend:
    """Micro-op driver: dispatch over pre-resolved handlers.

    Per instruction the loop does: a memoized fetch-permission check, the
    budget tick, the i-cache charge over precomputed line spans, the cost
    accounting (in exact integer cycle units), and one handler call.  Control flow follows pre-wired ``next_u``/``target`` links, so
    the common case never consults the instruction index.
    """

    name = "fast"

    def prepare(self, state):
        """Bind (or fetch the cached) micro-op program for the state's
        process under its cost model.  Decode is cached per
        (module fingerprint, config digest), binding per (process, cost
        model) — so N states over one loaded binary share one program."""
        return get_bound_program(state.process, state.costs)

    def clone_program(self, program, state):
        """Rebind a prepared program to ``state``'s process by cloning.

        The caller guarantees the process shares the source's binary and
        layout (see ``LockstepGroup``); the clone swaps only the memory
        reference and per-run fetch state, skipping the full bind.  The
        result is cached on the process like a ``prepare`` result."""
        clone = clone_bound_program(program, state.process.memory)
        state.process.uop_programs[id(state.costs)] = (state.costs, clone)
        return clone

    def execute(self, program, state, res):
        self._drive(program, state, res, None)
        res.exit_code = state._exit_code
        state.process.exit_code = state._exit_code
        return res

    def step(self, program, state, res, max_steps: int) -> bool:
        if state._halted:
            return True
        self._drive(program, state, res, max_steps)
        if state._halted:
            res.exit_code = state._exit_code
            state.process.exit_code = state._exit_code
        return state._halted

    def _drive(self, program, cpu, res, max_steps: Optional[int]):
        process = cpu.process
        memory = process.memory
        index_get = program.index.get

        icache = cpu.icache
        sets = icache._sets
        num_sets = icache.num_sets
        ways = icache.ways
        miss_penalty = cpu.costs.icache_miss_penalty_units
        mem_extra = cpu.costs.mem_operand_extra_units
        budget = cpu.instruction_budget - res.instructions
        trace = cpu.trace_fn
        count_ops = cpu.count_opcodes
        opcode_counts = res.opcode_counts
        attribute = cpu.attribute_tags
        tag_units = res.tag_cycle_units
        tag_counts = res.tag_counts

        # Handler-visible counters live on the state; driver-local ones are
        # flushed in the ``finally`` exactly like the reference loop.
        cpu._bk_shadow = cpu.shadow_stack if cpu.shadow_stack_enabled else None
        cpu._bk_calls = 0
        cpu._bk_rets = 0
        cpu._bk_branches = 0
        cpu._bk_taken = 0
        cpu._bk_traps = 0

        remaining = max_steps
        executed = 0
        cycles = 0
        mem_ops = 0
        hits = 0
        cache_misses = 0
        ep = memory.perm_epoch

        u = index_get(cpu.rip)
        try:
            if u is None:
                if not cpu._halted:
                    _missing(cpu, memory, cpu.rip)
            else:
                while True:
                    if remaining is not None:
                        if remaining == 0:
                            cpu.rip = u.rip
                            break
                        remaining -= 1
                    try:
                        if u.fetch_epoch != ep:
                            memory.fetch_check(u.rip, u.size)
                            u.fetch_epoch = ep

                        executed += 1
                        if executed > budget:
                            raise ExecutionLimitExceeded(
                                f"budget of {cpu.instruction_budget} instructions exceeded"
                            )

                        if trace is not None:
                            cpu.rip = u.rip
                            trace(cpu, u.rip, u.instr)
                            ep = memory.perm_epoch

                        cost = u.base_cost
                        misses = 0
                        for line in u.lines:
                            entries = sets[line % num_sets]
                            if line in entries:
                                entries.move_to_end(line)
                                hits += 1
                            else:
                                cache_misses += 1
                                misses += 1
                                entries[line] = True
                                if len(entries) > ways:
                                    entries.popitem(last=False)
                        if misses:
                            cost += misses * miss_penalty
                        if u.has_mem:
                            cost += mem_extra
                            mem_ops += 1
                        cycles += cost
                        if attribute:
                            tag = u.tag if u.tag is not None else UNTAGGED_TAG
                            tag_units[tag] = tag_units.get(tag, 0) + cost
                            tag_counts[tag] = tag_counts.get(tag, 0) + 1
                        if count_ops:
                            op = u.op
                            opcode_counts[op] = opcode_counts.get(op, 0) + 1

                        nxt = u.handler(cpu, u)
                    except BaseException:
                        cpu.rip = u.rip
                        raise

                    if nxt is None:
                        nu = u.next_u
                        if nu is None:
                            _missing(cpu, memory, u.next_rip)
                        u = nu
                    elif nxt.__class__ is MicroOp:
                        u = nxt
                    elif nxt.__class__ is int:
                        nu = index_get(nxt)
                        if nu is None:
                            _missing(cpu, memory, nxt)
                        u = nu
                    elif nxt is HALT:
                        cpu.rip = u.next_rip
                        break
                    else:  # SYNC: a runtime service may have changed mappings
                        ep = memory.perm_epoch
                        nu = u.next_u
                        if nu is None:
                            _missing(cpu, memory, u.next_rip)
                        u = nu
        finally:
            res.instructions += executed
            res.cycle_units += cycles
            res.cycles = res.cycle_units / CYCLE_UNIT
            if attribute and tag_units:
                res.tag_cycles = {tag: units / CYCLE_UNIT for tag, units in tag_units.items()}
            res.calls += cpu._bk_calls
            res.rets += cpu._bk_rets
            res.branches += cpu._bk_branches
            res.branches_taken += cpu._bk_taken
            res.mem_ops += mem_ops
            res.traps += cpu._bk_traps
            icache.hits += hits
            icache.misses += cache_misses
            res.icache_hits = icache.hits
            res.icache_misses = icache.misses
            res.output = process.output


DEFAULT_BACKEND = "reference"

BACKENDS: Dict[str, ExecutionBackend] = {
    "reference": ReferenceBackend(),
    "fast": FastBackend(),
}


def available_backends():
    """Names of the registered execution backends, sorted."""
    return sorted(BACKENDS)


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend by name; raises MachineError for unknown names."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise MachineError(f"unknown execution backend {name!r} (have: {known})") from None


def register_backend(backend: ExecutionBackend) -> None:
    """Register a custom backend under ``backend.name``."""
    BACKENDS[backend.name] = backend


# The tier-2 block-compiling backend builds on FastBackend, so it lives in
# its own module and registers here after the registry exists.
from repro.machine.jit import JitBackend as _JitBackend  # noqa: E402

register_backend(_JitBackend())
