"""The program loader: maps a linked binary into a fresh process.

The loader is the "kernel + dynamic loader" of the simulation.  It

* picks an ASLR layout (independent slides for text, data, heap, stack);
* rebases the position-independent binary: every symbolic operand and data
  relocation is resolved against the randomized bases;
* maps the text execute-only (the leakage-resilience prerequisite of
  Section 3), data/heap/stack read-write;
* stands up the heap allocator and registers the ``malloc``/``free``
  runtime services;
* runs the binary's constructors — this is where the R2C runtime
  constructor allocates BTDP guard pages (Section 5.2) — and finally
  points the process at ``_start``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import LinkError
from repro.heap.allocator import Allocator
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.machine.process import Process, randomize_layout
from repro.rng import DiversityRng

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.toolchain.binary import Binary

DEFAULT_HEAP_SIZE = 8 * 1024 * 1024
DEFAULT_STACK_SIZE = 1024 * 1024


def _malloc_service(process: Process, cpu) -> int:
    size = cpu.regs[Reg.RDI]
    return process.allocator.malloc(size)


def _free_service(process: Process, cpu) -> int:
    process.allocator.free(cpu.regs[Reg.RDI])
    return 0


def load_binary(
    binary: "Binary",
    *,
    seed: int = 0,
    aslr: bool = True,
    execute_only: bool = True,
    heap_size: int = DEFAULT_HEAP_SIZE,
    stack_size: int = DEFAULT_STACK_SIZE,
) -> Process:
    """Map ``binary`` into a new :class:`Process`, ready to run."""
    rng = DiversityRng(seed).child("loader")
    layout = randomize_layout(
        rng,
        text_size=max(binary.text_size, 1),
        data_size=max(binary.data_size, 1),
        heap_size=heap_size,
        stack_size=stack_size,
        aslr=aslr,
    )
    process = Process(layout, execute_only_text=execute_only)
    process.binary = binary

    def resolve(symbol: str) -> int:
        section, offset = binary.symbol_offset(symbol)
        base = layout.text_base if section == "text" else layout.data_base
        return base + offset

    # ---- text ---------------------------------------------------------------
    for offset, instr in binary.text:
        process.place_instruction(layout.text_base + offset, _rebase(instr, resolve))
    # Text pages are file-backed and become resident with the image, so
    # binary-size growth (BTRA setup code, NOPs, booby traps) shows up in
    # maxrss, as in the paper's Section 6.2.5 accounting.
    for offset in range(0, max(binary.text_size, 1), 4096):
        process.memory.store_raw(layout.text_base + offset, b"\x00")

    # ---- data ---------------------------------------------------------------
    if binary.data_image:
        process.memory.store_raw(layout.data_base, bytes(binary.data_image))
    for data_offset, symbol, addend in binary.data_relocs:
        process.memory.store_word_raw(
            layout.data_base + data_offset, resolve(symbol) + addend
        )

    # ---- symbols --------------------------------------------------------------
    for name, offset in binary.symbols_text.items():
        process.symbols[name] = layout.text_base + offset
    for name, offset in binary.symbols_data.items():
        process.symbols[name] = layout.data_base + offset

    # ---- heap + runtime services -----------------------------------------------
    process.allocator = Allocator(process.memory, layout.heap_base, layout.heap_size)
    process.register_service("malloc", _malloc_service)
    process.register_service("free", _free_service)

    # ---- constructors (R2C runtime setup happens here) ---------------------------
    for index, constructor in enumerate(binary.constructors):
        constructor(process, rng.child(f"ctor{index}"))

    entry = process.symbols.get(binary.entry_symbol)
    if entry is None:
        raise LinkError(f"entry symbol {binary.entry_symbol!r} missing")
    process.entry_point = entry
    process.note_resident()
    return process


def _rebase(instr: Instruction, resolve) -> Instruction:
    """Resolve symbolic operands against the process layout."""
    a, b = instr.a, instr.b
    changed = False
    if isinstance(a, Imm) and a.symbol is not None and instr.op is not Op.CALLRT:
        a = Imm(resolve(a.symbol) + a.value)
        changed = True
    if isinstance(b, Imm) and b.symbol is not None:
        b = Imm(resolve(b.symbol) + b.value)
        changed = True
    if isinstance(a, Mem) and a.symbol is not None:
        a = Mem(a.base, a.offset + resolve(a.symbol), a.index, a.scale)
        changed = True
    if isinstance(b, Mem) and b.symbol is not None:
        b = Mem(b.base, b.offset + resolve(b.symbol), b.index, b.scale)
        changed = True
    if not changed:
        return instr
    return Instruction(instr.op, a, b, size=instr.size, tag=instr.tag)


def make_cpu(process: Process, machine: str = "epyc-rome", **kwargs):
    """Convenience: build a :class:`~repro.machine.cpu.CPU` for a process."""
    from repro.machine.costs import get_costs
    from repro.machine.cpu import CPU

    return CPU(process, get_costs(machine), **kwargs)


def prepare_stack(process: Process) -> int:
    """Return the initial 16-byte-aligned stack pointer."""
    top = process.layout.stack_top
    return top & ~0xF
