"""Instruction-cache simulator.

Section 7.1 of the paper attributes the gap between the push-based and the
AVX2-based BTRA setup to instruction-cache pressure: the push sequence adds
~12 wide instructions per call site, the AVX2 sequence only 7.  To let that
mechanism emerge rather than hard-coding it, the CPU charges every fetched
cache line through this set-associative LRU model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

__all__ = ["ICache", "line_span", "block_line_plan"]


def line_span(address: int, size: int, line_size: int) -> range:
    """Cache lines covering ``[address, address + max(size, 1))``.

    The single source of truth for line occupancy: the cache model, the
    micro-op binder, and the profiler's shadow replay all use it, so a
    fetch touches the same lines no matter which layer computes them.
    """
    first = address // line_size
    last = (address + max(size, 1) - 1) // line_size
    return range(first, last + 1)


def block_line_plan(spans, line_size: int):
    """Fold a basic block's fetch stream into a per-instruction probe plan.

    ``spans`` is the block's (address, size) sequence in execution order;
    the result is one list per instruction of ``(line, must_probe)``
    pairs.  ``must_probe=False`` marks a *guaranteed hit*: the line was
    the immediately preceding probe in the same straight-line block, so
    it is resident and already most-recently-used — the access can be
    accounted (one hit, zero misses) without touching the LRU structure.
    This folding is sound only inside a basic block executed without
    interruption, which is exactly the tier-2 compiled-code contract;
    any deopt re-enters the interpreter, which probes normally.
    """
    plan = []
    last_line = None
    for address, size in spans:
        probes = []
        for line in line_span(address, size, line_size):
            probes.append((line, line != last_line))
            last_line = line
        plan.append(probes)
    return plan


class ICache:
    """Set-associative LRU instruction cache.

    Parameters mirror a real L1i: ``size_bytes`` total capacity,
    ``line_size`` bytes per line, ``ways`` associativity.
    """

    def __init__(self, size_bytes: int = 32 * 1024, line_size: int = 64, ways: int = 8):
        if size_bytes % (line_size * ways):
            raise ValueError("cache size must be a multiple of line_size * ways")
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size_bytes // (line_size * ways)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int, size: int) -> int:
        """Touch the lines covering ``[address, address+size)``; return misses."""
        misses = 0
        for line in line_span(address, size, self.line_size):
            index = line % self.num_sets
            entries = self._sets[index]
            if line in entries:
                entries.move_to_end(line)
                self.hits += 1
            else:
                self.misses += 1
                misses += 1
                entries[line] = True
                if len(entries) > self.ways:
                    entries.popitem(last=False)
        return misses

    def clone(self) -> "ICache":
        """Deep copy: same geometry, same resident lines (with LRU order),
        same hit/miss counters.  Used by ``MachineState.clone()`` so a
        snapshot's future cache behaviour matches the original's exactly."""
        twin = ICache.__new__(ICache)
        twin.line_size = self.line_size
        twin.ways = self.ways
        twin.num_sets = self.num_sets
        twin._sets = [OrderedDict(entries) for entries in self._sets]
        twin.hits = self.hits
        twin.misses = self.misses
        return twin

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
