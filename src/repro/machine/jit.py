"""Tiers 2 and 3 of the progressive-lowering pipeline: lazy block
compilation and trace compilation.

The ``jit`` backend executes nothing up front.  ``prepare`` is a cheap
handle around the process's instruction index; lowering happens *per
dynamic block head, on its second entry*:

* tier 1 — :func:`repro.machine.blocks.slice_block` recovers the
  straight-line run from the entry address through its terminator and
  :func:`~repro.machine.blocks.fuse_slice` annotates superinstructions
  (compare-and-branch forwarding, push runs);
* tier 2 — the slice compiles to one ``exec``-compiled Python function.
  Everything the interpreters re-derive per instruction is folded into
  the generated source: operand dispatch becomes specialized statements,
  per-instruction cycle charges fold into **one integer literal per
  block** (integer cycle units are associative —
  :data:`repro.machine.costs.CYCLE_UNIT`), i-cache accounting keeps only
  the genuinely uncertain probes (guaranteed intra-block hits are a baked
  constant, :func:`repro.machine.icache.block_line_plan`), and the
  instruction budget is one folded comparison in the block prolog.
* tier 3 — hot loop heads (backward direct-branch targets, detected at
  tier-2 compile time) are *armed* with an entry counter; once hot, the
  driver records the path of tier-2 blocks control takes through them
  and glues those slices into one trace function
  (:class:`_TraceCompiler`).  A path returning to its head becomes a
  **loop trace**: registers, the instruction cursor, the i-cache miss
  count, and the iteration counter live in Python locals across
  iterations, per-iteration static charges (cycles, hit/mem/branch
  bookkeeping) apply as ``it * constant`` only at exits, and accesses
  through loop-invariant base registers hoist their address arithmetic
  and page word-view lookups out of the loop.  Any other path becomes a
  **superblock** (direct call targets inlined past conditional exits).
  Conditional branches between segments become guards whose off-trace
  side *flushes the exact executed prefix* and returns the off-trace
  address — a side exit is a normal return, not a deopt — and indirect
  transfers (``call reg``/``jmp reg``/``ret``) specialize on the target
  observed during recording, counting misses; a trace whose guards storm
  (more failures than half its entries) demotes back to its tier-2
  block and is blacklisted.  Traces are formed only for lean variants
  (no tag attribution or opcode counting) and are disabled wholesale
  with :func:`set_tier3` / ``REPRO_JIT_TIER3=0``.

Block functions thread by address: a function returns the next block
head as a non-negative ``int`` (register values are masked, so real
addresses never collide with escapes), ``None`` after EXIT, or the
bitwise complement ``~addr`` as a *deopt escape*.  The driver trampolines
between compiled functions through one dictionary lookup; trace
functions obey the same protocol, so a trace is just a block function
that covers many blocks (and, for loops, many iterations) per call.

**The deopt contract.**  Anything compiled code cannot reproduce
*bit-identically* re-enters an interpreter mid-run with all partial
counters flushed first: cold code (fewer than two entries), slices
containing generic-only operand forms (negative-cached, interpreted
forever), stale fetch-permission epochs (prologs compare the per-block
validated epoch against the drive's mirror of
:attr:`Memory.perm_epoch`; the driver re-validates by fetch-checking the
slice and only then re-enters compiled code), budget or step-slice
exhaustion, and faults (compiled blocks charge an exact per-prefix
constant from a baked table, then re-raise with ``rip`` at the faulting
instruction; trace bodies key both fault tables by the generated source
line, since one guest address can occur in more than one segment).  A
trace deopt re-validates *all* constituent slices before the trace runs
again, and budget deopts from a loop trace fall through to the
interpreter exactly like block deopts.  Interpreter segments run block-granular spans on the
*reference* loop directly into the caller's result — exact, because all
cycle accounting is integer units.  A drive that starts with a trace
hook installed is delegated to ``fast`` wholesale, matching its
hoisted-hook semantics.  The differential suite holds ``jit`` to
byte-identical :class:`ExecutionResult`\\ s, faults, ``rip``, counters,
folded profiles, and lockstep divergence points against both other
backends.

Compiled code objects are cached per (module fingerprint, config digest,
address-space layout, cost-model signature, accounting flags): lockstep
replicas of one image re-``exec`` shared code objects against their own
memory bindings instead of re-generating source
(:meth:`JitBackend.clone_program`).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    BoobyTrapTriggered,
    MachineError,
    MemoryFault,
    ShadowStackViolation,
    StackMisaligned,
)
from repro.machine.blocks import backward_branch_target, fuse_slice, slice_block
from repro.machine.costs import CYCLE_UNIT, costs_signature, fold_cost
from repro.machine.cpu import UNTAGGED_TAG
from repro.machine.icache import block_line_plan, line_span
from repro.machine.isa import Imm, Mem, Op, Reg
from repro.machine.uops import TERMINATOR_OPS, _DIRECT_BRANCH_OPS, _kind, get_bound_program
from repro.numeric import MASK64, to_signed, truncated_div

__all__ = [
    "JitBackend",
    "JitProgram",
    "JIT_STATS",
    "jit_stats_snapshot",
    "reset_jit_stats",
    "clear_jit_cache",
    "set_tier3",
    "tier3_enabled",
]

_RSP = int(Reg.RSP)
_YMM0 = int(Reg.YMM0)

#: Entries at one dynamic block head before it is lowered to tier 2.
_PROMOTE_THRESHOLD = 2

#: Upper bound on one lowering unit (not a semantic boundary: execution
#: re-enters the pipeline at the cut).
_SLICE_LIMIT = 256

#: Block-function executions at an armed loop head before a trace is
#: recorded through it (tier 3).
_TRACE_THRESHOLD = 8

#: Upper bound on segments (basic blocks) in one trace.
_TRACE_MAX_SEGMENTS = 8

#: Recording attempts per head before tracing it is given up (aborted
#: recordings — a deopt mid-path — are retried this many times).
_TRACE_MAX_TRIES = 3

#: Specialization-guard storm limits: once a trace has been entered more
#: than ``_BLACKLIST_MIN_ENTRIES`` times with guard failures on more than
#: half of them, it demotes back to its tier-2 block.
_BLACKLIST_MIN_ENTRIES = 32

#: Session-wide lowering/observability counters (reported by ``bench``).
JIT_STATS = {
    "programs": 0,
    "blocks_compiled": 0,
    "superinstructions_fused": 0,
    "deopts": 0,
    "code_cache_hits": 0,
    "traces_compiled": 0,
    "loop_traces": 0,
    "superblocks": 0,
    "trace_side_exits": 0,
    "trace_guard_failures": 0,
    "traces_blacklisted": 0,
}


def jit_stats_snapshot() -> Dict[str, int]:
    return dict(JIT_STATS)


def reset_jit_stats() -> None:
    for key in JIT_STATS:
        JIT_STATS[key] = 0


#: Tier-3 master switch (module-wide).  Defaults on; ``REPRO_JIT_TIER3=0``
#: in the environment or :func:`set_tier3` turn trace compilation off —
#: the backend then stops at tier 2 (per-block compilation), which is the
#: pre-trace behaviour bit for bit.
_TIER3 = os.environ.get("REPRO_JIT_TIER3", "1") not in ("0", "false", "no", "off")


def set_tier3(enabled: bool) -> bool:
    """Enable/disable tier-3 trace compilation; returns the prior value.

    Takes effect for *newly armed* loop heads: traces already installed
    keep running (use :func:`clear_jit_cache` plus fresh programs for a
    clean flip in tests)."""
    global _TIER3
    previous = _TIER3
    _TIER3 = bool(enabled)
    return previous


def tier3_enabled() -> bool:
    return _TIER3


# ---------------------------------------------------------------------------
# Tier-2 eligibility and per-instruction lowering records
# ---------------------------------------------------------------------------

#: Two-operand ALU result expressions ({a}/{b} are operand value exprs).
_ALU_EXPR = {
    Op.ADD: "({a} + {b})",
    Op.SUB: "({a} - {b})",
    Op.AND: "({a} & {b})",
    Op.OR: "({a} | {b})",
    Op.XOR: "({a} ^ {b})",
    Op.SHL: "({a} << ({b} & 63))",
    Op.SHR: "({a} >> ({b} & 63))",
    Op.IMUL: "(ts({a}) * ts({b}))",
}

#: ALU ops whose result cannot leave the 64-bit range when both operands
#: are in it (registers and memory words always are; immediates are
#: masked at classification) — the ``& M`` truncation is elided.
_NO_MASK_OPS = frozenset({Op.AND, Op.OR, Op.XOR, Op.SHR})

_SETCC_COND = {
    Op.SETE: "== 0",
    Op.SETNE: "!= 0",
    Op.SETL: "< 0",
    Op.SETLE: "<= 0",
    Op.SETG: "> 0",
    Op.SETGE: ">= 0",
}

_JCC_COND = {
    Op.JE: "== 0",
    Op.JNE: "!= 0",
    Op.JL: "< 0",
    Op.JLE: "<= 0",
    Op.JG: "> 0",
    Op.JGE: ">= 0",
}

#: Negation of each condition string, for trace side-exit guards.
_COND_INVERT = {
    "== 0": "!= 0",
    "!= 0": "== 0",
    "< 0": ">= 0",
    "<= 0": "> 0",
    "> 0": "<= 0",
    ">= 0": "< 0",
}

_VBYTES = {Op.VLOAD: 32, Op.VLOAD512: 64, Op.VSTORE: 32, Op.VSTORE512: 64}

#: Opcodes whose generated statements can raise (memory access, division,
#: alignment/shadow checks, traps, host services).  Slices containing none
#: of these (and no memory operands) compile without a try/except wrapper.
_FAULTABLE = {
    Op.IDIV,
    Op.PUSH,
    Op.POP,
    Op.CALL,
    Op.RET,
    Op.TRAP,
    Op.CALLRT,
    Op.VLOAD,
    Op.VLOAD512,
    Op.VSTORE,
    Op.VSTORE512,
}

_MOV_FORMS = {
    ("R", "R"), ("R", "I"), ("R", "MB"), ("R", "MA"),
    ("MB", "R"), ("MA", "R"), ("MB", "I"), ("MA", "I"),
}
_ALU_FORMS = {
    ("R", "R"), ("R", "I"), ("R", "MB"), ("R", "MA"),
    ("MB", "R"), ("MB", "I"),
}
_CMP_FORMS = {("R", "R"), ("R", "I"), ("R", "MB"), ("MB", "R"), ("MB", "I")}


class _JU:
    """One instruction's lowering record: operand kinds pre-classified,
    immediates masked, memory recipes extracted — the same extraction
    rules as the tier-0 binder (:func:`repro.machine.uops._bind`)."""

    __slots__ = (
        "rip", "next_rip", "size", "op", "tag", "ka", "kb",
        "a_reg", "b_reg", "imm", "a_base", "a_off", "b_base", "b_off",
        "sym", "has_mem", "target",
    )


def _supported(op: Op, ka: str, kb: str) -> bool:
    """Tier-2 eligibility for one (opcode, operand-kind) combination."""
    if op is Op.MOV:
        return (ka, kb) in _MOV_FORMS
    if op in _ALU_EXPR:
        return (ka, kb) in _ALU_FORMS
    if op is Op.LEA:
        return (ka, kb) in {("R", "MB"), ("R", "MA")}
    if op is Op.PUSH:
        return ka in ("R", "I")
    if op is Op.EXIT:
        return ka in ("R", "I", "N")
    if op is Op.POP or op is Op.NEG or op in _SETCC_COND:
        return ka == "R"
    if op is Op.IDIV:
        return ka == "R" and kb in ("R", "I")
    if op is Op.CMP:
        return (ka, kb) in _CMP_FORMS
    if op is Op.TEST:
        return (ka, kb) in {("R", "R"), ("R", "I")}
    if op is Op.JMP or op is Op.CALL:
        return ka in ("R", "I")
    if op in _JCC_COND:
        return ka == "I"
    if op in (Op.RET, Op.NOP, Op.TRAP, Op.VZEROUPPER):
        return True
    if op in (Op.VLOAD, Op.VLOAD512):
        return ka == "R" and kb in ("MB", "MA")
    if op in (Op.VSTORE, Op.VSTORE512):
        return ka in ("MB", "MA") and kb == "R"
    if op is Op.OUT:
        return ka in ("R", "I")
    return False


def _classify(addr: int, instr) -> Optional[_JU]:
    """Lower one instruction to a :class:`_JU`, or None when only the
    generic (reference-semantics) path can run it."""
    a, b = instr.a, instr.b
    op = instr.op
    # Unresolved symbolic immediates (outside CALLRT) must fault through
    # the reference operand path.
    if (
        isinstance(a, Imm) and a.symbol is not None and op is not Op.CALLRT
    ) or (isinstance(b, Imm) and b.symbol is not None):
        return None
    ka, kb = _kind(a), _kind(b)
    if op is Op.CALLRT:
        if not (isinstance(a, Imm) and a.symbol is not None):
            return None
    elif not _supported(op, ka, kb):
        return None
    ju = _JU()
    ju.rip = addr
    ju.size = instr.size
    ju.next_rip = addr + instr.size
    ju.op = op
    ju.tag = instr.tag
    ju.ka = ka
    ju.kb = kb
    ju.a_reg = int(a) if isinstance(a, Reg) else 0
    ju.b_reg = int(b) if isinstance(b, Reg) else 0
    if isinstance(b, Imm) and b.symbol is None:
        ju.imm = b.value & MASK64
    elif isinstance(a, Imm) and a.symbol is None:
        ju.imm = a.value & MASK64
    else:
        ju.imm = 0
    if isinstance(a, Mem):
        ju.a_base = None if a.base is None else int(a.base)
        ju.a_off = a.offset & MASK64 if a.base is None else a.offset
    else:
        ju.a_base = None
        ju.a_off = 0
    if isinstance(b, Mem):
        ju.b_base = None if b.base is None else int(b.base)
        ju.b_off = b.offset & MASK64 if b.base is None else b.offset
    else:
        ju.b_base = None
        ju.b_off = 0
    ju.has_mem = isinstance(a, Mem) or isinstance(b, Mem)
    ju.sym = a.symbol if isinstance(a, Imm) else None
    ju.target = ju.imm if (op in _DIRECT_BRANCH_OPS or op in _JCC_COND) and ka == "I" else None
    return ju


def _faultable(ju: _JU) -> bool:
    return ju.op in _FAULTABLE or ju.has_mem


def _mem_addr_expr(off: int, base: Optional[int]) -> str:
    if base is None:
        return repr(off)
    return f"({off!r} + r[{base}]) & M"


def _sx(expr: str) -> str:
    """Sign-extend a masked 64-bit expression inline (branchless
    ``to_signed``).  Only safe for side-effect-free expressions — the
    operand is evaluated twice."""
    return f"({expr} - (({expr} >> 63) << 64))"


def _fault_lineno() -> int:
    """Line (in the handling frame — the generated block function) where
    the in-flight exception was raised.

    The fault-attribution mechanism: instead of maintaining an ``I =
    <rip>`` bookkeeping local before every faultable instruction — pure
    happy-path overhead — the generated except handler maps the faulting
    *source line* back to its instruction address through a baked
    line-number table.  The traceback's first entry is always the handling
    frame with ``tb_lineno`` at the offending statement, whether the
    exception was raised by a nested call (memory accessors, runtime
    services) or by an inline ``raise``.
    """
    return sys.exc_info()[2].tb_lineno


def _text_fits_icache(instructions, costs) -> bool:
    """True when the program's whole text maps at most ``ways`` distinct
    lines into every i-cache set.

    Under that bound **no eviction can ever occur** — a set never grows
    past its capacity — so LRU recency is unobservable and every probe
    reduces to first-touch membership: a line misses exactly once per
    process lifetime and hits forever after.  The compiled-code prober and
    codegen exploit this (``monotone`` mode): probes skip the LRU
    ``move_to_end``/eviction mutations, and a block that has run its
    probes once to completion marks itself in ``PD`` and skips them on
    every later execution — they are all guaranteed hits with no state
    change.  The interpreter's exact-LRU probes interoperate: its
    ``move_to_end`` calls are no-ops for observability when nothing ever
    evicts.
    """
    num_sets = costs.icache_size // (costs.icache_line * costs.icache_ways)
    ways = costs.icache_ways
    line_size = costs.icache_line
    seen = set()
    per_set: Dict[int, int] = {}
    for addr, instr in instructions.items():
        for line in line_span(addr, instr.size, line_size):
            if line not in seen:
                seen.add(line)
                index = line % num_sets
                count = per_set.get(index, 0) + 1
                if count > ways:
                    return False
                per_set[index] = count
    return True


def _make_probers(ways: int, monotone: bool):
    """(probe_one, probe_many) i-cache probe helpers for generated code,
    returning the miss count.  Bound per program so ``ways`` is a closure
    constant.

    The exact variants mirror :meth:`ICache.access`'s set mutation order;
    the ``monotone`` variants (text fits the cache, see
    :func:`_text_fits_icache`) skip the unobservable LRU maintenance —
    membership insert on miss only."""

    if monotone:

        def probe_one(sets, index, line):
            entry = sets[index]
            if line in entry:
                return 0
            entry[line] = True
            return 1

        def probe_many(sets, pairs):
            misses = 0
            for index, line in pairs:
                entry = sets[index]
                if line not in entry:
                    misses += 1
                    entry[line] = True
            return misses

        return probe_one, probe_many

    def probe_one(sets, index, line):
        entry = sets[index]
        if line in entry:
            entry.move_to_end(line)
            return 0
        entry[line] = True
        if len(entry) > ways:
            entry.popitem(last=False)
        return 1

    def probe_many(sets, pairs):
        misses = 0
        for index, line in pairs:
            entry = sets[index]
            if line in entry:
                entry.move_to_end(line)
            else:
                misses += 1
                entry[line] = True
                if len(entry) > ways:
                    entry.popitem(last=False)
        return misses

    return probe_one, probe_many


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _SliceCompiler:
    """Generates the source of one block function.

    Two accounting strategies share the semantics emitter:

    * **lean** (no tag attribution, no opcode counting — the hot
      configuration): per-instruction instruction counts, cycle charges,
      guaranteed i-cache hits, and memory-op counts fold into *static
      integer constants* accumulated at codegen time.  The generated body
      carries only the genuinely dynamic parts — LRU probes for lines not
      guaranteed resident (hits ``h``, misses ``m``, penalty units
      ``pu``) — and the terminator flush charges ``K + pu`` in one
      statement.  Faults restore the exact executed prefix from a baked
      per-block table keyed by faulting ``rip``.
    * **rich** (attribution and/or opcode counts): per-instruction
      charges are emitted inline in the interpreters' order, with integer
      unit literals, per-tag dict updates, and per-opcode counts.
    """

    def __init__(self, addr: int, items, jus: List[_JU], fused, costs,
                 attribute: bool, count_ops: bool, monotone: bool = False):
        self.addr = addr
        self.items = items
        self.jus = jus
        self.fused = fused
        self.costs = costs
        self.attribute = attribute
        self.count_ops = count_ops
        self.rich = attribute or count_ops
        #: Text fits the i-cache (see :func:`_text_fits_icache`): lean
        #: probes are first-touch-only and skippable once the block has
        #: probed to completion.  Rich mode keeps inline exact probes.
        self.monotone = monotone and not self.rich
        self.num_sets = costs.icache_size // (costs.icache_line * costs.icache_ways)
        self.ways = costs.icache_ways
        self.penalty = costs.icache_miss_penalty_units
        self.lines: List[str] = []
        self.needs_try = any(_faultable(j) for j in jus)
        self.indent = "        " if self.needs_try else "    "
        self.fused_cmp = any(kind == "cmp+jcc" for kind, _, _ in fused)
        self.push_runs = {start: count for kind, start, count in fused if kind == "push-run"}
        self._run_positions = set()
        for start, count in self.push_runs.items():
            self._run_positions.update(range(start + 1, start + count))
        self.plan = block_line_plan([(a, i.size) for a, i in items], costs.icache_line)
        self.has_probe = any(must for probes in self.plan for _, must in probes)
        self.has_mem_any = any(j.has_mem for j in jus)
        self.used_shadow = any(j.op in (Op.CALL, Op.RET) for j in jus)
        # Lean-mode static accumulators and the per-prefix fault table.
        self.stat_x = 0
        self.stat_k = 0
        self.stat_g = 0
        self.stat_o = 0
        self.stat_p = 0
        self._pending: List[Tuple[int, int]] = []
        self.xb: Dict[int, Tuple[int, int, int, int, int]] = {}
        # Fault attribution: every emitted line is tagged with the rip of
        # the faultable instruction a fault on it attributes to (pure
        # lines attribute to the most recent faultable — identical to the
        # old ``I = <rip>`` bookkeeping, without its happy-path cost).
        # The except handler recovers the rip from the faulting line
        # number via a baked table (see :func:`_fault_lineno`).
        self._line_rip: List[int] = []
        self._ctx_rip = next((j.rip for j in jus if _faultable(j)), 0)
        # Rich-mode used flags (mirror the per-instruction emitter).
        self.used_miss = False
        self.used_mem = False

    # -- helpers -----------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append(self.indent + line)
        self._line_rip.append(self._ctx_rip)

    def flush_probes(self) -> None:
        """Emit the pending LRU probe batch (lean mode).

        Probes of consecutive non-faultable instructions batch into one
        generated statement: nothing between two faultable statements can
        observe i-cache state, so running the probes back-to-back at the
        next possible fault point (or the terminator) is indistinguishable
        from the interpreter's per-fetch interleaving — and it keeps the
        generated source (whose ``compile()`` time is the dominant cost of
        a cold cell) an order of magnitude smaller than inline probes.
        """
        pending = self._pending
        if not pending:
            return
        # Monotone mode: once this block has probed to completion (the
        # ``PD`` mark before its terminator), every later probe is a
        # guaranteed hit with no state change — skip the calls outright.
        guard = "if not f: " if self.monotone else ""
        if len(pending) == 1:
            index, line = pending[0]
            self.emit(f"{guard}m += PRB1(S, {index}, {line})")
        else:
            pairs = ", ".join(f"({index}, {line})" for index, line in pending)
            self.emit(f"{guard}m += PRB(S, ({pairs}))")
        self.stat_p += len(pending)
        pending.clear()

    def flush_stmts(self) -> List[str]:
        out = ["C[0] = n"]
        if self.rich:
            out.append("C[3] += h")
            if self.used_miss:
                out.append("C[4] += m")
            if self.used_mem:
                out.append("C[2] += o")
        else:
            if self.has_probe:
                out.append(f"C[1] += {self.stat_k} + m * {self.penalty}")
                out.append(f"C[3] += {self.stat_g + self.stat_p} - m")
                out.append("C[4] += m")
            else:
                out.append(f"C[1] += {self.stat_k}")
                if self.stat_g:
                    out.append(f"C[3] += {self.stat_g}")
            if self.stat_o:
                out.append(f"C[2] += {self.stat_o}")
        return out

    def emit_flush_and(self, tail: str) -> None:
        for stmt in self.flush_stmts():
            self.emit(stmt)
        self.emit(tail)

    # -- inlined memory word access (lean mode) ----------------------------
    #
    # The single hottest thing compiled code does is call
    # ``Memory.read_word``/``write_word``.  Lean blocks inline the aligned
    # single-page fast path instead: ``RMG``/``WMG`` are bound ``dict.get``
    # methods over the memory's word-view maps (page base -> 64-bit
    # memoryview, present iff the page is materialized and currently
    # grants the permission — see :class:`repro.machine.memory.Memory`),
    # so a hit licenses one indexed view access outright.  Every miss —
    # unaligned, unmaterialized, unmapped, protected, guard, big-endian
    # host — falls back to the accessor call, which reproduces the exact
    # behaviour including the fault, from a line the ``LN`` table
    # attributes to the same instruction.  Rich mode keeps plain calls
    # (observability runs are not the hot configuration).

    def emit_load_q(self, target: str, qvar: str) -> None:
        """``target = read_word(qvar)`` with the aligned path inline."""
        if self.rich:
            self.emit(f"{target} = RW({qvar})")
            return
        self.emit(f"z = {qvar} & 4095")
        self.emit(f"u = RMG({qvar} - z)")
        self.emit(f"{target} = u[z >> 3] if u is not None and not z & 7 else RW({qvar})")

    def emit_load(self, target: str, off: int, base: Optional[int]) -> None:
        """``target = read_word(off [+ r[base]])``; absolute addresses fold
        the page split and alignment test at codegen time."""
        if self.rich:
            self.emit(f"{target} = RW({_mem_addr_expr(off, base)})")
            return
        if base is None:
            z = off & 4095
            if not z & 7:
                self.emit(f"u = RMG({off - z})")
                self.emit(f"{target} = u[{z >> 3}] if u is not None else RW({off!r})")
            else:
                self.emit(f"{target} = RW({off!r})")
            return
        self.emit(f"q = ({off!r} + r[{base}]) & M")
        self.emit_load_q(target, "q")

    def emit_store_q(self, qvar: str, value: str) -> None:
        """``write_word(qvar, value)`` with the aligned path inline.
        ``value`` must be side-effect-free and already 64-bit masked (all
        register values, classified immediates, and masked ALU results
        are; the word view raises on out-of-range stores)."""
        if self.rich:
            self.emit(f"WW({qvar}, {value})")
            return
        self.emit(f"z = {qvar} & 4095")
        self.emit(f"u = WMG({qvar} - z)")
        self.emit(f"if u is None or z & 7: WW({qvar}, {value})")
        self.emit(f"else: u[z >> 3] = {value}")

    def emit_store(self, off: int, base: Optional[int], value: str) -> None:
        if self.rich:
            self.emit(f"WW({_mem_addr_expr(off, base)}, {value})")
            return
        if base is None:
            z = off & 4095
            if not z & 7:
                self.emit(f"u = WMG({off - z})")
                self.emit(f"if u is None: WW({off!r}, {value})")
                self.emit(f"else: u[{z >> 3}] = {value}")
            else:
                self.emit(f"WW({off!r}, {value})")
            return
        self.emit(f"q = ({off!r} + r[{base}]) & M")
        self.emit_store_q("q", value)

    # -- accounting --------------------------------------------------------

    def account_lean(self, position: int, ju: _JU) -> None:
        for line, must_probe in self.plan[position]:
            if not must_probe:
                self.stat_g += 1
                continue
            self._pending.append((line % self.num_sets, line))
        self.stat_x += 1
        self.stat_k += fold_cost(self.costs, ju.op, 0, ju.has_mem)
        if ju.has_mem:
            self.stat_o += 1
        if self.needs_try and _faultable(ju):
            # A fault at this instruction must observe exactly the probes
            # of instructions up to and including it — flush the batch now.
            self.flush_probes()
            self.xb[ju.rip] = (
                self.stat_x, self.stat_k, self.stat_g, self.stat_o, self.stat_p,
            )
            self._ctx_rip = ju.rip

    def account_rich(self, position: int, ju: _JU) -> None:
        if self.needs_try:
            self.emit("x += 1")
        probes = self.plan[position]
        max_miss = sum(1 for entry in probes if entry[1])
        k = [
            repr(fold_cost(self.costs, ju.op, misses, ju.has_mem))
            for misses in range(max_miss + 1)
        ]
        charge = "w = {0}" if self.attribute else "C[1] += {0}"
        if max_miss == 0:
            for _ in probes:
                self.emit("h += 1")
            self.emit(charge.format(k[0]))
        elif len(probes) == 1:
            line = probes[0][0]
            self.used_miss = True
            self.emit(f"e = S[{line % self.num_sets}]")
            self.emit(f"if {line} in e:")
            self.emit(f"    e.move_to_end({line}); h += 1; " + charge.format(k[0]))
            self.emit("else:")
            self.emit(f"    m += 1; e[{line}] = True")
            self.emit(f"    if len(e) > {self.ways}: e.popitem(last=False)")
            self.emit("    " + charge.format(k[1]))
        else:
            # Multi-line fetch with at least one real probe: count misses.
            self.used_miss = True
            self.emit("ms = 0")
            for line, must_probe in probes:
                if not must_probe:
                    self.emit("h += 1")
                    continue
                self.emit(f"e = S[{line % self.num_sets}]")
                self.emit(f"if {line} in e:")
                self.emit(f"    e.move_to_end({line}); h += 1")
                self.emit("else:")
                self.emit(f"    ms += 1; m += 1; e[{line}] = True")
                self.emit(f"    if len(e) > {self.ways}: e.popitem(last=False)")
            self.emit(charge.format(f"({', '.join(k)})[ms]"))
        if ju.has_mem:
            self.used_mem = True
            self.emit("o += 1")
        if self.attribute:
            tag = repr(ju.tag if ju.tag is not None else UNTAGGED_TAG)
            self.emit("C[1] += w")
            self.emit(f"d = C[7]; d[{tag}] = d.get({tag}, 0) + w")
            self.emit(f"d = C[8]; d[{tag}] = d.get({tag}, 0) + 1")
        if self.count_ops:
            name = f"OP_{ju.op.name}"
            self.emit(f"d = C[9]; d[{name}] = d.get({name}, 0) + 1")
        if self.needs_try and _faultable(ju):
            self._ctx_rip = ju.rip

    # -- semantics ---------------------------------------------------------

    def a_val(self, ju: _JU) -> str:
        if ju.ka == "R":
            return f"r[{ju.a_reg}]"
        if ju.ka == "I":
            return repr(ju.imm)
        raise AssertionError(ju.ka)

    def b_val(self, ju: _JU) -> str:
        kb = ju.kb
        if kb == "R":
            return f"r[{ju.b_reg}]"
        if kb == "I":
            return repr(ju.imm)
        if kb == "MB":
            return f"RW({_mem_addr_expr(ju.b_off, ju.b_base)})"
        if kb == "MA":
            return f"RW({ju.b_off!r})"
        raise AssertionError(kb)

    def emit_semantics(self, position: int, ju: _JU) -> None:
        op = ju.op
        ka, kb = ju.ka, ju.kb
        if op is Op.MOV:
            if ka == "R":
                if kb in ("MB", "MA"):
                    self.emit_load(f"r[{ju.a_reg}]", ju.b_off, ju.b_base)
                else:
                    self.emit(f"r[{ju.a_reg}] = {self.b_val(ju)}")
            else:
                self.emit_store(ju.a_off, ju.a_base, self.b_val(ju))
        elif op in _ALU_EXPR:
            expr = _ALU_EXPR[op]
            if ka == "R":
                if kb in ("MB", "MA"):
                    self.emit_load("y", ju.b_off, ju.b_base)
                    bexpr = "y"
                else:
                    bexpr = self.b_val(ju)
                if op is Op.IMUL:
                    # Inline sign extension for register/loaded operands;
                    # fold it entirely for immediates.
                    sa = _sx(f"r[{ju.a_reg}]")
                    sb = repr(to_signed(ju.imm)) if kb == "I" else _sx(bexpr)
                    body = f"({sa} * {sb})"
                else:
                    body = expr.format(a=f"r[{ju.a_reg}]", b=bexpr)
                mask = "" if op in _NO_MASK_OPS else " & M"
                self.emit(f"r[{ju.a_reg}] = {body}{mask}")
            else:  # MB destination: read-modify-write one address
                self.emit(f"q = {_mem_addr_expr(ju.a_off, ju.a_base)}")
                self.emit_load_q("y", "q")
                body = expr.format(a="y", b=self.b_val(ju))
                mask = "" if op in _NO_MASK_OPS else " & M"
                self.emit(f"y = {body}{mask}")
                self.emit_store_q("q", "y")
        elif op is Op.LEA:
            if kb == "MB":
                self.emit(f"r[{ju.a_reg}] = {_mem_addr_expr(ju.b_off, ju.b_base)}")
            else:
                self.emit(f"r[{ju.a_reg}] = {ju.b_off!r}")
        elif op is Op.PUSH:
            if position in self._run_positions:
                # Inside a fused push run: `p` already holds RSP.
                self.emit("p = (p - 8) & M")
            else:
                self.emit(f"p = (r[{_RSP}] - 8) & M")
            self.emit(f"r[{_RSP}] = p")
            self.emit_store_q("p", self.a_val(ju))
        elif op is Op.POP:
            self.emit(f"p = r[{_RSP}]")
            self.emit_load_q(f"r[{ju.a_reg}]", "p")
            self.emit(f"r[{_RSP}] = (p + 8) & M")
        elif op is Op.IDIV:
            if kb == "R":
                self.emit(f"dv = ts(r[{ju.b_reg}])")
                self.emit("if dv == 0:")
                self.emit(f"    raise ME('division by zero at {ju.rip:#x}')")
                self.emit(f"r[{ju.a_reg}] = td(ts(r[{ju.a_reg}]), dv) & M")
            else:
                divisor = to_signed(ju.imm)
                if divisor == 0:
                    self.emit(f"raise ME('division by zero at {ju.rip:#x}')")
                else:
                    self.emit(f"r[{ju.a_reg}] = td(ts(r[{ju.a_reg}]), {divisor!r}) & M")
        elif op is Op.NEG:
            self.emit(f"r[{ju.a_reg}] = (-r[{ju.a_reg}]) & M")
        elif op is Op.CMP or op is Op.TEST:
            if op is Op.CMP:
                # At most one operand is memory (_CMP_FORMS); load it into
                # a local first so sign extension can inline.
                if ka == "R":
                    lhs = _sx(f"r[{ju.a_reg}]")
                else:
                    self.emit_load("y", ju.a_off, ju.a_base)
                    lhs = _sx("y")
                if kb == "I":
                    rhs = repr(to_signed(ju.imm))
                elif kb == "R":
                    rhs = _sx(f"r[{ju.b_reg}]")
                else:
                    self.emit_load("y", ju.b_off, ju.b_base)
                    rhs = _sx("y")
                value = f"{lhs} - {rhs}"
            else:
                value = _sx(f"(r[{ju.a_reg}] & {self.b_val(ju)})")
            if self.fused_cmp and position == len(self.jus) - 2:
                self.emit(f"w_ = {value}")
                self.emit("cpu._cmp = w_")
            else:
                self.emit(f"cpu._cmp = {value}")
        elif op in _SETCC_COND:
            self.emit(f"r[{ju.a_reg}] = 1 if cpu._cmp {_SETCC_COND[op]} else 0")
        elif op in (Op.VLOAD, Op.VLOAD512):
            nbytes = _VBYTES[op]
            addr = _mem_addr_expr(ju.b_off, ju.b_base) if kb == "MB" else repr(ju.b_off)
            self.emit(f"cpu.vregs[{ju.a_reg - _YMM0}] = RD({addr}, {nbytes})")
        elif op in (Op.VSTORE, Op.VSTORE512):
            addr = _mem_addr_expr(ju.a_off, ju.a_base) if ka == "MB" else repr(ju.a_off)
            self.emit(f"WR({addr}, cpu.vregs[{ju.b_reg - _YMM0}])")
        elif op is Op.OUT:
            self.emit(f"OA({self.a_val(ju)})")
        elif op in (Op.NOP, Op.VZEROUPPER):
            pass
        else:  # pragma: no cover - terminators handled by emit_terminator
            raise AssertionError(f"unexpected straight-line op {op}")

    def emit_terminator(self, ju: _JU) -> None:
        op = ju.op
        if op is Op.EXIT:
            ka = ju.ka
            value = repr(ju.imm) if ka == "I" else (f"r[{ju.a_reg}]" if ka == "R" else "0")
            self.emit(f"cpu._exit_code = {value}")
            self.emit("cpu._halted = True")
            self.emit(f"cpu.rip = {ju.next_rip}")
            self.emit_flush_and("return None")
        elif op is Op.TRAP:
            self.emit("cpu._bk_traps += 1")
            self.emit(f"raise BTT({ju.rip})")
        elif op is Op.JMP:
            self.emit("cpu._bk_branches += 1")
            self.emit("cpu._bk_taken += 1")
            if ju.ka == "R":
                self.emit_flush_and(f"return r[{ju.a_reg}]")
            else:
                self.emit_flush_and(f"return {ju.target}")
        elif op in _JCC_COND:
            cond = _JCC_COND[op]
            value = "w_" if self.fused_cmp else "cpu._cmp"
            self.emit("cpu._bk_branches += 1")
            self.emit(f"if {value} {cond}:")
            self.emit("    cpu._bk_taken += 1")
            for stmt in self.flush_stmts():
                self.emit("    " + stmt)
            self.emit(f"    return {ju.target}")
            self.emit_flush_and(f"return {ju.next_rip}")
        elif op is Op.CALL:
            self.emit(f"if cpu.check_alignment and r[{_RSP}] % 16 != 0:")
            self.emit(
                "    raise SM('rsp=%#x not 16-byte aligned at call "
                f"({ju.rip:#x})' % r[{_RSP}])"
            )
            indirect = ju.ka == "R"
            if indirect:
                self.emit(f"tv = r[{ju.a_reg}]")
            self.emit(f"p = (r[{_RSP}] - 8) & M")
            self.emit(f"r[{_RSP}] = p")
            self.emit_store_q("p", repr(ju.next_rip))
            self.emit("if sh is not None:")
            self.emit(f"    sh.append({ju.next_rip})")
            self.emit("cpu._bk_calls += 1")
            if indirect:
                self.emit_flush_and("return tv")
            else:
                self.emit_flush_and(f"return {ju.target}")
        elif op is Op.RET:
            self.emit(f"p = r[{_RSP}]")
            self.emit_load_q("tv", "p")
            self.emit(f"r[{_RSP}] = (p + 8) & M")
            self.emit("if sh is not None:")
            self.emit("    ex = sh.pop() if sh else 0")
            self.emit("    if ex != tv:")
            self.emit("        raise SSV(ex, tv)")
            self.emit("cpu._bk_rets += 1")
            self.emit_flush_and("return tv")
        elif op is Op.CALLRT:
            self.emit(f"fn = PSV({ju.sym!r})")
            self.emit(f"cpu.rip = {ju.rip}")
            self.emit("r[0] = fn(P, cpu) & M")
            self.emit("C[6] = MEM.perm_epoch")
            self.emit_flush_and(f"return {ju.next_rip}")
        else:  # slice cut (limit / missing successor): plain fall-through
            self.emit_semantics(len(self.jus) - 1, ju)
            self.emit_flush_and(f"return {ju.next_rip}")

    # -- assembly ----------------------------------------------------------

    def generate(self) -> str:
        jus = self.jus
        last = len(jus) - 1
        for position, ju in enumerate(jus):
            if self.rich:
                self.account_rich(position, ju)
            else:
                self.account_lean(position, ju)
            if position == last:
                # Nothing can fault past here: run any still-pending probes.
                self.flush_probes()
                if self.monotone and self.has_probe:
                    # Every probe of this block has now executed at least
                    # once; its lines are resident forever (nothing ever
                    # evicts), so later executions skip the probes.
                    self.emit(f"if not f: PD[{self.addr}] = 1")
                self.emit_terminator(ju)
            else:
                self.emit_semantics(position, ju)

        addr = self.addr
        head = [
            f"def b_{addr:x}(cpu, r, S, C):",
            f"    n = C[0] + {len(jus)}",
            f"    if n > C[5] or E[{addr}] != C[6]:",
            f"        return {~addr}",
        ]
        if self.rich:
            head.append("    h = 0")
            if self.used_miss:
                head.append("    m = 0")
            if self.used_mem:
                head.append("    o = 0")
            if self.needs_try:
                head.append("    x = 0")
        elif self.has_probe:
            head.append("    m = 0")
            if self.monotone:
                head.append(f"    f = {addr} in PD")
        if self.used_shadow:
            head.append("    sh = cpu._bk_shadow")
        tail: List[str] = []
        if self.needs_try:
            head.append("    try:")
            tail.append("    except BaseException:")
            tail.append(f"        I = LN_{addr:x}[TB()]")
            if self.rich:
                tail.append("        C[0] += x")
                tail.append("        C[3] += h")
                if self.used_miss:
                    tail.append("        C[4] += m")
                if self.used_mem:
                    tail.append("        C[2] += o")
            else:
                tail.append(f"        x_, k_, g_, o_, p_ = X_{addr:x}[I]")
                tail.append("        C[0] += x_")
                if self.has_probe:
                    tail.append(f"        C[1] += k_ + m * {self.penalty}")
                    tail.append("        C[3] += g_ + p_ - m")
                    tail.append("        C[4] += m")
                else:
                    tail.append("        C[1] += k_")
                    tail.append("        C[3] += g_")
                if self.has_mem_any:
                    tail.append("        C[2] += o_")
            tail.append("        cpu.rip = I")
            tail.append("        raise")
        if self.needs_try:
            # The faulting-line -> rip map the except handler reads.  Both
            # baked tables (this and the lean fault-prefix table ``xb``)
            # are injected into the execution namespace as objects at link
            # time rather than rendered as source literals — ``compile()``
            # never parses them.
            first_body = len(head) + 1
            self.ln = {
                first_body + index: rip
                for index, rip in enumerate(self._line_rip)
            }
        else:
            self.ln = None
        return "\n".join(head + self.lines + tail)


# ---------------------------------------------------------------------------
# Tier 3: trace code generation
# ---------------------------------------------------------------------------


class _TraceCompiler(_SliceCompiler):
    """Generates the source of one tier-3 trace function.

    A trace is a recorded sequence of tier-2 slices glued together.
    Direct branches between segments disappear, conditional branches
    become guards whose off-trace side *flushes the exact executed
    prefix* and returns the off-trace address (a side exit is a normal
    block-function return with exact counters, not a deopt), and
    indirect transfers (``call reg``/``jmp reg``/``ret``) specialize on
    the target observed during recording, with the same flush-and-return
    miss path.  Loop traces (``closed``: the recorded path returns to
    its head) wrap the body in a ``while``: the instruction cursor, the
    i-cache miss count, and the iteration count live in Python locals
    across iterations, and per-iteration static charges are applied as
    ``it * constant`` only at exits, deopts, and faults.

    Fault attribution generalizes the block scheme: because one guest
    address can occur in more than one segment (an inlined callee called
    twice), both baked tables — faulting line -> rip and faulting line ->
    executed-prefix stats — are keyed by the *generated source line*
    directly.  For loop traces the prefix stats are per-iteration; the
    handler adds the ``it``-scaled full-iteration constants on top.

    Lean accounting only: traces are formed only for variants without
    tag attribution or opcode counting (observability runs stay at
    tier 2, whose rich codegen is already exact per block).
    """

    # Per-iteration/total static constants are unknown until the whole
    # body is emitted; flush sites reference them through these tokens,
    # substituted once at the end of :meth:`generate`.
    _T_K = "_KIT_"   # cycle units per iteration / trace
    _T_G = "_GIT_"   # i-cache hit charges (guaranteed + probed) per iteration
    _T_O = "_OIT_"   # memory ops per iteration
    _T_I = "_ILN_"   # instructions per iteration
    _T_B = "_BIT_"   # branches retired at glue sites per iteration / trace
    _T_T = "_TIT_"   # taken branches at glue sites per iteration / trace
    _T_C = "_CIT_"   # calls at glue sites per iteration / trace
    _T_R = "_RIT_"   # returns at glue sites per iteration / trace
    #: Register write-back site: expands to one semicolon-joined line
    #: restoring every cached register into ``r`` (line counts are stable,
    #: so the baked line tables stay valid).
    _T_W = "_WB_"

    #: Register accesses in emitted statements (``r[<index>]``); each one
    #: rewrites to a trace-local ``g<index>``.
    _REG_REF = re.compile(r"\br\[(\d+)\]")

    def __init__(self, head: int, segments, glues, costs, monotone: bool,
                 closed: bool, hoist_bases: frozenset = frozenset()):
        self.addr = head
        self.segments = segments
        self.glues = glues
        self.costs = costs
        self.closed = closed
        #: Loop-invariant base registers (second compile pass only):
        #: static ``off + base`` accesses through them hoist the address
        #: arithmetic and page word-view lookup out of the loop.  Pure
        #: fast-path caching — a view that appears mid-call (a store
        #: materializing a page) just keeps taking the accessor fallback,
        #: and nothing can invalidate a view mid-call (permission epochs
        #: only move at runtime services, which end traces).
        self.hoist_bases = hoist_bases if closed else frozenset()
        self._slots: Dict[Tuple[int, Optional[int]], int] = {}
        self._slot_kinds: Dict[Tuple[int, Optional[int]], set] = {}
        self.attribute = False
        self.count_ops = False
        self.rich = False
        self.num_sets = costs.icache_size // (costs.icache_line * costs.icache_ways)
        self.ways = costs.icache_ways
        self.penalty = costs.icache_miss_penalty_units
        self.lines: List[str] = []
        all_jus = [j for _, _, jus, _ in segments for j in jus]
        self.total = len(all_jus)
        self.needs_try = any(_faultable(j) for j in all_jus)
        base = "        " if self.needs_try else "    "
        self.indent = base + "    " if closed else base
        self._plans = [
            block_line_plan([(a, i.size) for a, i in items], costs.icache_line)
            for _, items, _, _ in segments
        ]
        self.has_probe = any(
            must for plan in self._plans for probes in plan for _, must in probes
        )
        self.monotone = monotone
        self.has_mem_any = any(j.has_mem for j in all_jus)
        self.used_shadow = any(j.op in (Op.CALL, Op.RET) for j in all_jus)
        self.spec = any(g[0] in ("call-ind", "jmp-ind", "ret") for g in glues)
        # Branch bookkeeping at glue sites is static per iteration — it is
        # hoisted into the same flush-time constants as the counters.
        kinds = [kind for kind, _ in glues]
        self.hoist_b = any(k in ("jmp", "jcc", "jmp-ind") for k in kinds)
        self.hoist_c = any(k in ("call", "call-ind") for k in kinds)
        self.hoist_r = any(k == "ret" for k in kinds)
        self.stat_x = 0
        self.stat_k = 0
        self.stat_g = 0
        self.stat_o = 0
        self.stat_p = 0
        self.stat_b = 0
        self.stat_t = 0
        self.stat_c = 0
        self.stat_r = 0
        self._pending: List[Tuple[int, int]] = []
        self._line_rip: List[int] = []
        self._line_stats: List[Tuple[int, ...]] = []
        self._ctx_rip = next((j.rip for j in all_jus if _faultable(j)), 0)
        self._ctx_stats = (0, 0, 0, 0, 0, 0, 0, 0, 0)
        self.used_miss = False
        self.used_mem = False
        #: Registers referenced anywhere in the body (insertion-ordered);
        #: each lives in a local ``g<index>`` for the whole trace.
        self.cached: Dict[int, None] = {}

    # -- overrides ---------------------------------------------------------

    def emit(self, line: str) -> None:
        if "r[" in line:
            line = self._REG_REF.sub(self._cache_reg, line)
        self.lines.append(self.indent + line)
        self._line_rip.append(self._ctx_rip)
        self._line_stats.append(self._ctx_stats)

    def _cache_reg(self, match) -> str:
        index = int(match.group(1))
        self.cached[index] = None
        return f"g{index}"

    def written_regs(self) -> set:
        """Registers assigned anywhere in the emitted body (register
        writes are always plain ``g<i> = expr`` statements)."""
        written = set()
        for line in self.lines:
            for stmt in re.split(r"[;:]", line):
                if " = " not in stmt:
                    continue
                lhs = stmt.split(" = ", 1)[0].strip()
                match = re.fullmatch(r"g(\d+)", lhs)
                if match:
                    written.add(int(match.group(1)))
        return written

    def _slot(self, off: int, base: int, write: bool) -> int:
        key = (off, base)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = len(self._slots)
            self._slot_kinds[key] = set()
        self._slot_kinds[key].add("w" if write else "r")
        self.cached[base] = None
        return slot

    def emit_load(self, target: str, off: int, base: Optional[int]) -> None:
        if base is not None and base in self.hoist_bases:
            j = self._slot(off, base, False)
            self.emit(
                f"{target} = ur{j}[y{j}] if ur{j} is not None else RW(q{j})"
            )
            return
        super().emit_load(target, off, base)

    def emit_store(self, off: int, base: Optional[int], value: str) -> None:
        if base is not None and base in self.hoist_bases:
            j = self._slot(off, base, True)
            self.emit(f"if uw{j} is None: WW(q{j}, {value})")
            self.emit(f"else: uw{j}[y{j}] = {value}")
            return
        super().emit_store(off, base, value)

    def flush_stmts(self) -> List[str]:
        # Only the final superblock terminator uses this: every glue site
        # has executed, so the hoisted branch totals are the trace totals.
        out = [self._T_W] + super().flush_stmts()
        if self.hoist_b:
            out.append(f"cpu._bk_branches += {self._T_B}")
            out.append(f"cpu._bk_taken += {self._T_T}")
        if self.hoist_c:
            out.append(f"cpu._bk_calls += {self._T_C}")
        if self.hoist_r:
            out.append(f"cpu._bk_rets += {self._T_R}")
        return out

    def account_lean(self, position: int, ju: _JU) -> None:
        for line, must_probe in self.plan[position]:
            if not must_probe:
                self.stat_g += 1
                continue
            self._pending.append((line % self.num_sets, line))
        self.stat_x += 1
        self.stat_k += fold_cost(self.costs, ju.op, 0, ju.has_mem)
        if ju.has_mem:
            self.stat_o += 1
        if self.needs_try and _faultable(ju):
            self.flush_probes()
            self._ctx_rip = ju.rip
            self._ctx_stats = (
                self.stat_x, self.stat_k, self.stat_g, self.stat_o, self.stat_p,
                self.stat_b, self.stat_t, self.stat_c, self.stat_r,
            )

    # -- trace-specific emission -------------------------------------------

    def _load_segment(self, index: int, addr: int, items, jus, fused) -> None:
        self.seg_addr = addr
        self.items = items
        self.jus = jus
        self.fused = fused
        self.fused_cmp = any(kind == "cmp+jcc" for kind, _, _ in fused)
        self.push_runs = {start: count for kind, start, count in fused
                          if kind == "push-run"}
        self._run_positions = set()
        for start, count in self.push_runs.items():
            self._run_positions.update(range(start + 1, start + count))
        self.plan = self._plans[index]

    def _side_exit(self, pad: str, ret_expr: str, guard_fail: bool = False) -> None:
        """Flush the exact executed prefix and leave the trace through a
        normal (non-deopt) return of the off-trace address."""
        x, k, g, o, p = self.stat_x, self.stat_k, self.stat_g, self.stat_o, self.stat_p
        out: List[str] = [self._T_W]
        if self.closed:
            out.append(f"C[0] = n + {x}")
            if self.has_probe:
                out.append(f"C[1] += it * {self._T_K} + {k} + m * {self.penalty}")
                out.append(f"C[3] += it * {self._T_G} + {g + p} - m")
                out.append("C[4] += m")
            else:
                out.append(f"C[1] += it * {self._T_K} + {k}")
                out.append(f"C[3] += it * {self._T_G} + {g}")
            if self.has_mem_any:
                out.append(f"C[2] += it * {self._T_O} + {o}")
        else:
            out.append("C[0] = n" if x == self.total else f"C[0] = n - {self.total - x}")
            if self.has_probe:
                out.append(f"C[1] += {k} + m * {self.penalty}")
                out.append(f"C[3] += {g + p} - m")
                out.append("C[4] += m")
            else:
                out.append(f"C[1] += {k}")
                if g:
                    out.append(f"C[3] += {g}")
            if o:
                out.append(f"C[2] += {o}")
        b, t = self.stat_b, self.stat_t
        c, rr = self.stat_c, self.stat_r
        if self.closed:
            def scaled(token: str, prefix: int) -> str:
                return f"it * {token} + {prefix}" if prefix else f"it * {token}"
            if self.hoist_b:
                out.append(f"cpu._bk_branches += {scaled(self._T_B, b)}")
                out.append(f"cpu._bk_taken += {scaled(self._T_T, t)}")
            if self.hoist_c:
                out.append(f"cpu._bk_calls += {scaled(self._T_C, c)}")
            if self.hoist_r:
                out.append(f"cpu._bk_rets += {scaled(self._T_R, rr)}")
        else:
            if b:
                out.append(f"cpu._bk_branches += {b}")
            if t:
                out.append(f"cpu._bk_taken += {t}")
            if c:
                out.append(f"cpu._bk_calls += {c}")
            if rr:
                out.append(f"cpu._bk_rets += {rr}")
        if guard_fail:
            out.append("tc[1] += 1")
            out.append("JS['trace_guard_failures'] += 1")
        out.append("JS['trace_side_exits'] += 1")
        out.append(f"return {ret_expr}")
        for stmt in out:
            self.emit(pad + stmt)

    def _emit_glue(self, ju: _JU, glue: Tuple[str, int]) -> None:
        """Lower one mid-trace terminator: branch bookkeeping, the guard
        (when the transfer is conditional or specialized), and the fall
        into the next segment's code."""
        kind, nh = glue
        if kind == "jmp":
            self.stat_b += 1
            self.stat_t += 1
        elif kind == "jcc":
            cond = _JCC_COND[ju.op]
            value = "w_" if self.fused_cmp else "cpu._cmp"
            self.stat_b += 1
            if nh == ju.target:
                # On-trace direction is taken; the guard exits through
                # the fall-through on the inverted condition (the exit
                # prefix therefore excludes this branch's taken count).
                self.emit(f"if {value} {_COND_INVERT[cond]}:")
                self._side_exit("    ", repr(ju.next_rip))
                self.stat_t += 1
            else:
                self.emit(f"if {value} {cond}:")
                self.stat_t += 1
                self._side_exit("    ", repr(ju.target))
                self.stat_t -= 1
        elif kind in ("call", "call-ind"):
            self.emit(f"if cpu.check_alignment and r[{_RSP}] % 16 != 0:")
            self.emit(
                "    raise SM('rsp=%#x not 16-byte aligned at call "
                f"({ju.rip:#x})' % r[{_RSP}])"
            )
            if kind == "call-ind":
                self.emit(f"tv = r[{ju.a_reg}]")
            self.emit(f"p = (r[{_RSP}] - 8) & M")
            self.emit(f"r[{_RSP}] = p")
            self.emit_store_q("p", repr(ju.next_rip))
            self.emit("if sh is not None:")
            self.emit(f"    sh.append({ju.next_rip})")
            self.stat_c += 1
            if kind == "call-ind":
                self.emit(f"if tv != {nh}:")
                self._side_exit("    ", "tv", guard_fail=True)
        elif kind == "jmp-ind":
            self.stat_b += 1
            self.stat_t += 1
            self.emit(f"tv = r[{ju.a_reg}]")
            self.emit(f"if tv != {nh}:")
            self._side_exit("    ", "tv", guard_fail=True)
        elif kind == "ret":
            self.emit(f"p = r[{_RSP}]")
            self.emit_load_q("tv", "p")
            self.emit(f"r[{_RSP}] = (p + 8) & M")
            self.emit("if sh is not None:")
            self.emit("    ex = sh.pop() if sh else 0")
            self.emit("    if ex != tv:")
            self.emit("        raise SSV(ex, tv)")
            self.stat_r += 1
            self.emit(f"if tv != {nh}:")
            self._side_exit("    ", "tv", guard_fail=True)
        else:  # pragma: no cover - formation only produces the kinds above
            raise AssertionError(kind)

    # -- assembly ----------------------------------------------------------

    def generate(self) -> str:
        H = self.addr
        glues = self.glues
        for index, (addr, items, jus, fused) in enumerate(self.segments):
            self._load_segment(index, addr, items, jus, fused)
            last = len(jus) - 1
            glue = glues[index] if index < len(glues) else None
            for position, ju in enumerate(jus):
                self.account_lean(position, ju)
                if position == last:
                    self.flush_probes()
                    if glue is None:
                        # Final segment of a superblock: the terminator
                        # flushes the whole-trace totals (the base
                        # emitter's flush is exact here — ``n`` already
                        # includes the trace length).
                        if self.monotone and self.has_probe:
                            self.emit(f"if not f: PD[{~H}] = 1")
                        self.emit_terminator(ju)
                    else:
                        self._emit_glue(ju, glue)
                else:
                    self.emit_semantics(position, ju)
        if self.closed:
            self.emit("it += 1")
            self.emit(f"n = n + {self._T_I}")
            if self.monotone and self.has_probe:
                # All probes of the trace have now run once; their lines
                # are resident forever (nothing ever evicts).
                self.emit("if not f:")
                self.emit(f"    PD[{~H}] = 1")
                self.emit("    f = 1")

        name = f"t_{H:x}"
        head = [f"def {name}(cpu, r, S, C):"]
        if self.spec:
            head.append(f"    tc = TC_{H:x}")
            head.append("    tc[0] += 1")
            head.append(
                f"    if tc[0] > {_BLACKLIST_MIN_ENTRIES} and tc[1] * 2 > tc[0]:"
            )
            head.append(f"        DM.append({H})")
            head.append(f"        return {~H}")
        if self.closed:
            head.append("    n = C[0]")
        else:
            head.append(f"    n = C[0] + {self.total}")
            head.append(f"    if n > C[5] or ET[{H}] != C[6]:")
            head.append(f"        return {~H}")
        if self.has_probe:
            head.append("    m = 0")
            if self.monotone:
                head.append(f"    f = {~H} in PD")
        if self.used_shadow:
            head.append("    sh = cpu._bk_shadow")
        if self.closed:
            head.append("    it = 0")
        if self.cached:
            head.append(
                "    " + "; ".join(f"g{i} = r[{i}]" for i in self.cached)
            )
        for (off, base), j in self._slots.items():
            head.append(
                f"    q{j} = ({off!r} + g{base}) & M; "
                f"z_ = q{j} & 4095; y{j} = z_ >> 3"
            )
            kinds = self._slot_kinds[(off, base)]
            if "r" in kinds:
                head.append(f"    ur{j} = None if z_ & 7 else RMG(q{j} - z_)")
            if "w" in kinds:
                head.append(f"    uw{j} = None if z_ & 7 else WMG(q{j} - z_)")
        if self.needs_try:
            head.append("    try:")
        if self.closed:
            w = "        " if self.needs_try else "    "
            head.append(w + "while 1:")
            head.append(w + f"    if n + {self._T_I} > C[5] or ET[{H}] != C[6]:")
            pad = w + "        "
            head.append(pad + self._T_W)
            head.append(pad + "C[0] = n")
            if self.has_probe:
                head.append(pad + f"C[1] += it * {self._T_K} + m * {self.penalty}")
                head.append(pad + f"C[3] += it * {self._T_G} - m")
                head.append(pad + "C[4] += m")
            else:
                head.append(pad + f"C[1] += it * {self._T_K}")
                head.append(pad + f"C[3] += it * {self._T_G}")
            if self.has_mem_any:
                head.append(pad + f"C[2] += it * {self._T_O}")
            if self.hoist_b:
                head.append(pad + f"cpu._bk_branches += it * {self._T_B}")
                head.append(pad + f"cpu._bk_taken += it * {self._T_T}")
            if self.hoist_c:
                head.append(pad + f"cpu._bk_calls += it * {self._T_C}")
            if self.hoist_r:
                head.append(pad + f"cpu._bk_rets += it * {self._T_R}")
            head.append(pad + f"return {~H}")

        tail: List[str] = []
        if self.needs_try:
            tail.append("    except BaseException:")
            tail.append("        L = TB()")
            tail.append(f"        I = LNT_{H:x}[L]")
            tail.append(
                f"        x_, k_, g_, o_, p_, b_, t_, c_, r_ = XT_{H:x}[L]"
            )
            if self.closed:
                tail.append("        C[0] = n + x_")
                itk, itg, ito = (
                    f"it * {self._T_K} + ", f"it * {self._T_G} + ",
                    f"it * {self._T_O} + ",
                )
            else:
                tail.append("        C[0] += x_")
                itk = itg = ito = ""
            if self.has_probe:
                tail.append(f"        C[1] += {itk}k_ + m * {self.penalty}")
                tail.append(f"        C[3] += {itg}g_ + p_ - m")
                tail.append("        C[4] += m")
            else:
                tail.append(f"        C[1] += {itk}k_")
                tail.append(f"        C[3] += {itg}g_ + p_")
            if self.has_mem_any:
                tail.append(f"        C[2] += {ito}o_")
            def it_scaled(token: str) -> str:
                return f"it * {token} + " if self.closed else ""

            if self.hoist_b:
                tail.append(f"        cpu._bk_branches += {it_scaled(self._T_B)}b_")
                tail.append(f"        cpu._bk_taken += {it_scaled(self._T_T)}t_")
            if self.hoist_c:
                tail.append(f"        cpu._bk_calls += {it_scaled(self._T_C)}c_")
            if self.hoist_r:
                tail.append(f"        cpu._bk_rets += {it_scaled(self._T_R)}r_")
            tail.append("        " + self._T_W)
            tail.append("        cpu.rip = I")
            tail.append("        raise")

        first_body = len(head) + 1
        self.ln = {
            first_body + index: rip for index, rip in enumerate(self._line_rip)
        }
        self.xt = {
            first_body + index: stats
            for index, stats in enumerate(self._line_stats)
        }
        writeback = "; ".join(f"r[{i}] = g{i}" for i in self.cached) or "pass"
        source = "\n".join(head + self.lines + tail)
        return (
            source
            .replace(self._T_W, writeback)
            .replace(self._T_K, repr(self.stat_k))
            .replace(self._T_G, repr(self.stat_g + self.stat_p))
            .replace(self._T_O, repr(self.stat_o))
            .replace(self._T_I, repr(self.total))
            .replace(self._T_B, repr(self.stat_b))
            .replace(self._T_T, repr(self.stat_t))
            .replace(self._T_C, repr(self.stat_c))
            .replace(self._T_R, repr(self.stat_r))
        )


class _TraceUnit:
    """One compiled trace, shareable across processes of one image.

    ``segments`` lists the constituent slice heads (in trace order) —
    the driver fetch-revalidates all of them before re-entering the
    trace after an epoch deopt, and the CLI renders trace membership
    from them.  ``ln_table``/``xt_table`` are the line-keyed fault
    tables (see :class:`_TraceCompiler`)."""

    __slots__ = (
        "code", "name", "head", "kind", "segments", "length", "spec",
        "ln_table", "xt_table",
    )

    def __init__(self, code, name: str, head: int, kind: str,
                 segments: List[int], length: int, spec: bool,
                 ln_table, xt_table):
        self.code = code
        self.name = name
        self.head = head
        self.kind = kind
        self.segments = segments
        self.length = length
        self.spec = spec
        self.ln_table = ln_table
        self.xt_table = xt_table


# ---------------------------------------------------------------------------
# Compiled-code cache, variants, and programs
# ---------------------------------------------------------------------------


class _BlockUnit:
    """One compiled slice, shareable across processes of one image.

    ``x_table``/``ln_table`` are the block's baked fault tables (see
    :class:`_SliceCompiler`): linked into the execution namespace as
    plain objects so the source ``compile()`` parses stays small."""

    __slots__ = (
        "code", "name", "length", "fused", "x_table", "ln_table", "back_target",
    )

    def __init__(self, code, name: str, length: int, fused: int,
                 x_table=None, ln_table=None, back_target: Optional[int] = None):
        self.code = code
        self.name = name
        self.length = length
        self.fused = fused
        self.x_table = x_table
        self.ln_table = ln_table
        #: Backward direct-branch target (a loop-header candidate the
        #: tier-3 promoter arms for trace recording), or None.
        self.back_target = back_target


#: (fingerprint, digest, layout bases, costs signature, flags) ->
#: {block head address: _BlockUnit or None (negative-cached: interp-only)}.
_CODE_CACHE: Dict[tuple, Dict[int, Optional[_BlockUnit]]] = {}


def clear_jit_cache() -> None:
    """Drop all cached compiled units (test isolation helper)."""
    _CODE_CACHE.clear()


class _Variant:
    """One accounting-flag variant of a program, linked to one process.

    Holds the per-process execution namespace (memory accessors, runtime
    services, error types), the address -> linked-function dispatch
    table, per-head entry counts driving promotion, the negative cache of
    heads that cannot lower, and the per-head validated fetch epochs."""

    __slots__ = (
        "flags", "units", "table", "entries", "no_compile", "epochs", "namespace",
        "pending", "demote", "armed", "loop_targets", "no_trace", "trace_tries",
        "trace_meta", "trace_epochs", "blacklist",
    )

    def __init__(self, program: "JitProgram", flags: Tuple[bool, bool]):
        self.flags = flags
        # Tier-3 state.  ``pending`` is the list armed loop-head wrappers
        # append to when their entry counter crosses the trace threshold
        # (the driver polls its truthiness once per block transition);
        # ``demote`` is the list blacklisting trace prologs append to.
        self.pending: List[int] = []
        self.demote: List[int] = []
        self.armed: Dict[int, object] = {}
        self.loop_targets: set = set()
        self.no_trace: set = set()
        self.trace_tries: Dict[int, int] = {}
        #: Trace head -> {"kind", "segments", "length", "block_fn"}.
        self.trace_meta: Dict[int, dict] = {}
        self.trace_epochs: Dict[int, int] = {}
        self.blacklist: set = set()
        monotone = program.monotone()
        key = (
            None if program.cache_key is None
            else program.cache_key + flags + (monotone,)
        )
        self.units = {} if key is None else _CODE_CACHE.setdefault(key, {})
        self.table: Dict[int, object] = {}
        self.entries: Dict[int, int] = {}
        self.no_compile: set = set()
        self.epochs: Dict[int, int] = {}
        process = program.process
        memory = process.memory
        namespace = {
            "M": MASK64,
            "ts": to_signed,
            "td": truncated_div,
            "ME": MachineError,
            "SSV": ShadowStackViolation,
            "SM": StackMisaligned,
            "BTT": BoobyTrapTriggered,
            "RW": memory.read_word,
            "WW": memory.write_word,
            "RD": memory.read,
            "WR": memory.write,
            # Aligned-word dispatch maps (page base -> 64-bit view) for
            # the inlined memory fast path; see _SliceCompiler.emit_load.
            "RMG": memory._rmv.get,
            "WMG": memory._wmv.get,
            "MEM": memory,
            "P": process,
            "OA": process.output.append,
            "PSV": process.service,
            "E": self.epochs,
            "ET": self.trace_epochs,
            "DM": self.demote,
            "JS": JIT_STATS,
            "TB": _fault_lineno,
        }
        namespace["PRB1"], namespace["PRB"] = _make_probers(
            program.costs.icache_ways, monotone
        )
        # Per-variant "block fully probed" marks for monotone mode.
        namespace["PD"] = {}
        for op in Op:
            namespace[f"OP_{op.name}"] = op
        self.namespace = namespace


class JitProgram:
    """Prepared form for the ``jit`` backend: a cheap handle over the
    process's instruction index.  All lowering is lazy — no decode, no
    bind, no codegen happens here — so cold or short-lived processes pay
    nothing for selecting this backend."""

    __slots__ = (
        "process", "costs", "instructions", "variants", "cache_key",
        "_fastprog", "_monotone",
    )

    def __init__(self, process, costs):
        self.process = process
        self.costs = costs
        self.instructions = process.instructions
        self.variants: Dict[Tuple[bool, bool], _Variant] = {}
        self._fastprog = None
        self._monotone: Optional[bool] = None
        binary = process.binary
        fingerprint = getattr(binary, "module_fingerprint", None)
        digest = getattr(binary, "config_digest", None)
        if fingerprint and digest:
            layout = process.layout
            self.cache_key = (
                fingerprint,
                digest,
                layout.text_base,
                layout.data_base,
                layout.heap_base,
                layout.stack_base,
                costs_signature(costs),
            )
        else:
            self.cache_key = None

    def monotone(self) -> bool:
        """Whether the text working set fits the i-cache (computed once,
        lazily — it walks the instruction index)."""
        if self._monotone is None:
            self._monotone = _text_fits_icache(self.instructions, self.costs)
        return self._monotone

    def variant(self, attribute: bool, count_ops: bool) -> _Variant:
        key = (bool(attribute), bool(count_ops))
        linked = self.variants.get(key)
        if linked is None:
            linked = _Variant(self, key)
            self.variants[key] = linked
        return linked

    def fast_program(self):
        """The tier-0 bound program, for drives delegated to ``fast``
        (trace hooks installed).  Bound lazily and cached — observability
        runs pay the bind cost, plain runs never do."""
        if self._fastprog is None:
            self._fastprog = get_bound_program(self.process, self.costs)
        return self._fastprog

    def stats(self) -> Dict[str, int]:
        """Lowering statistics across this program's linked variants."""
        compiled = set()
        interp_only = set()
        fused = 0
        traces = self.trace_info()
        for variant in self.variants.values():
            for addr, unit in variant.units.items():
                if isinstance(addr, tuple):
                    continue  # trace units counted through trace_info()
                if unit is None:
                    interp_only.add(addr)
                elif addr not in compiled:
                    compiled.add(addr)
                    fused += unit.fused
        return {
            "blocks": len(compiled) + len(interp_only),
            "tier2_blocks": len(compiled),
            "tier1_blocks": len(interp_only),
            "superinstructions_fused": fused,
            "tier3_traces": len(traces),
            "loop_traces": sum(
                1 for meta in traces.values() if meta["kind"] == "loop"
            ),
            "superblocks": sum(
                1 for meta in traces.values() if meta["kind"] == "superblock"
            ),
        }

    def trace_info(self) -> Dict[int, dict]:
        """Installed tier-3 traces across variants: head -> {kind,
        segments, length} (the ``disasm-blocks`` CLI renders this)."""
        info: Dict[int, dict] = {}
        for variant in self.variants.values():
            for head, meta in variant.trace_meta.items():
                if head not in info:
                    info[head] = {
                        "kind": meta["kind"],
                        "segments": list(meta["segments"]),
                        "length": meta["length"],
                    }
        return info


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class JitBackend:
    """Tier-2 lazily block-compiling backend (``"jit"``).

    ``prepare`` returns a cheap :class:`JitProgram`; lowering happens per
    dynamic block head on its second entry (tier 1 slice recovery +
    fusion, then tier 2 codegen, with compiled code objects shared
    through the image-keyed cache).  ``execute``/``step`` trampoline
    between compiled block functions by address, deopting to the
    reference interpreter wherever compiled code cannot reproduce
    interpreter behaviour bit-for-bit (see the module docstring)."""

    name = "jit"

    def __init__(self):
        from repro.machine.backends import FastBackend, ReferenceBackend

        self._fast = FastBackend()
        self._reference = ReferenceBackend()

    # -- program management -------------------------------------------------

    def prepare(self, state):
        cache = state.process.uop_programs
        key = ("jit", id(state.costs))
        entry = cache.get(key)
        if entry is not None and entry[0] is state.costs:
            return entry[1]
        program = JitProgram(state.process, state.costs)
        JIT_STATS["programs"] += 1
        cache[key] = (state.costs, program)
        return program

    def clone_program(self, program, state):
        """Rebind to a replica process.  Construction is cheap (no bind,
        no codegen); replicas share compiled code objects through the
        image-keyed cache, so N lockstep variants of one image generate
        and compile each hot block's source exactly once."""
        clone = JitProgram(state.process, state.costs)
        JIT_STATS["programs"] += 1
        state.process.uop_programs[("jit", id(state.costs))] = (state.costs, clone)
        return clone

    # -- lowering -----------------------------------------------------------

    def _promote(self, program, variant, addr: int):
        """Lower the slice at ``addr`` to a linked block function, or
        negative-cache it (returns None: interpret this head forever)."""
        units = variant.units
        if addr in units:
            unit = units[addr]
            if unit is not None:
                JIT_STATS["code_cache_hits"] += 1
        else:
            unit = self._compile_slice(program, variant, addr)
            units[addr] = unit
        if unit is None:
            variant.no_compile.add(addr)
            return None
        namespace = variant.namespace
        if unit.ln_table is not None:
            namespace[f"LN_{addr:x}"] = unit.ln_table
        if unit.x_table is not None:
            namespace[f"X_{addr:x}"] = unit.x_table
        exec(unit.code, namespace)
        fn = namespace[unit.name]
        variant.epochs.setdefault(addr, -1)
        variant.table[addr] = fn
        if _TIER3 and not (variant.flags[0] or variant.flags[1]):
            fn = self._tier3_promote(program, variant, addr, fn, unit)
        return fn

    # -- tier 3: arming, recording, formation -------------------------------

    def _tier3_promote(self, program, variant, addr: int, fn, unit):
        """Tier-3 hooks at block promotion: install a cached trace for
        this head outright (lockstep replicas of one image record and
        compile each trace exactly once), or arm loop-header candidates
        — this block's backward branch target, and this head itself if a
        back edge was seen before it was promoted."""
        tunit = variant.units.get(("t", addr))
        if tunit is not None and addr not in variant.blacklist:
            JIT_STATS["code_cache_hits"] += 1
            return self._install_trace(variant, addr, tunit, fn)
        back = unit.back_target
        if back is not None:
            if back in variant.table or back == addr:
                self._arm(variant, back)
            else:
                variant.loop_targets.add(back)
        if addr in variant.loop_targets:
            self._arm(variant, addr)
        return variant.table[addr]

    def _arm(self, variant, head: int) -> None:
        """Wrap the compiled block at ``head`` with an entry counter that
        requests trace recording once the head proves hot.  The wrapper
        is the only tier-3 cost a non-hot block ever pays, and it is
        removed again as soon as the head is traced or given up."""
        if (
            head in variant.armed
            or head in variant.trace_meta
            or head in variant.no_trace
            or head in variant.blacklist
        ):
            return
        fn = variant.table.get(head)
        if fn is None:
            variant.loop_targets.add(head)
            return
        counter = [0]
        pending = variant.pending

        def counting(cpu, r, S, C, _fn=fn, _c=counter, _h=head, _p=pending):
            value = _fn(cpu, r, S, C)
            _c[0] += 1
            if _c[0] == _TRACE_THRESHOLD:
                _p.append(_h)
            return value

        variant.armed[head] = fn
        variant.table[head] = counting

    def _disarm(self, variant, head: int) -> None:
        fn = variant.armed.pop(head, None)
        if fn is not None:
            variant.table[head] = fn

    def _record(self, program, variant, cpu, r, S, C, rip: int, value):
        """Drive execution while recording the head path for the most
        recently requested trace.  Entered from the driver right after
        the block at ``rip`` returned ``value``; returns the last
        undispatched block-function result (the driver resumes from it).

        Recording starts when control reaches the requested head and
        stops at: the head again (a closed loop trace), the segment
        limit or EXIT (a superblock), a deopt escape (abort — retried a
        bounded number of times), or a head with no compiled function
        (the partial path still forms a superblock when long enough)."""
        pending = variant.pending
        head = pending[-1]
        table_get = variant.table.get
        path: Optional[List[int]] = [head] if rip == head else None
        while True:
            if value is None:
                if path is not None:
                    pending.pop()
                    self._finish_recording(program, variant, head, path, False)
                return None
            if value < 0:
                if path is not None:
                    pending.pop()
                    self._abort_recording(variant, head)
                return value
            nxt = value
            if path is not None:
                if nxt == head:
                    pending.pop()
                    self._finish_recording(program, variant, head, path, True)
                    return value
                if len(path) >= _TRACE_MAX_SEGMENTS:
                    pending.pop()
                    self._finish_recording(program, variant, head, path, False)
                    return value
            fn = table_get(nxt)
            if fn is None:
                if path is not None:
                    pending.pop()
                    if len(path) >= 2:
                        self._finish_recording(program, variant, head, path, False)
                    else:
                        self._abort_recording(variant, head)
                return value
            cpu.rip = nxt
            rip = nxt
            value = fn(cpu, r, S, C)
            if path is not None:
                path.append(rip)
            elif rip == head:
                path = [rip]

    def _abort_recording(self, variant, head: int) -> None:
        tries = variant.trace_tries.get(head, 0) + 1
        variant.trace_tries[head] = tries
        self._disarm(variant, head)
        if tries >= _TRACE_MAX_TRIES:
            variant.no_trace.add(head)
        else:
            self._arm(variant, head)

    def _finish_recording(self, program, variant, head: int,
                          path: List[int], closed: bool) -> None:
        self._disarm(variant, head)
        variant.loop_targets.discard(head)
        cached = variant.units.get(("t", head))
        if cached is not None and head not in variant.blacklist:
            JIT_STATS["code_cache_hits"] += 1
            self._install_trace(variant, head, cached, variant.table[head])
            return
        if self._form_trace(program, variant, head, path, closed) is None:
            variant.no_trace.add(head)

    @staticmethod
    def _glue_for(ju: _JU, nh: int):
        """Glue descriptor lowering the transition from a segment ending
        in ``ju`` to the recorded next head ``nh``, or None when the
        trace must end before ``nh``."""
        op = ju.op
        if op is Op.JMP:
            if ju.ka == "I":
                return ("jmp", nh) if ju.target == nh else None
            return ("jmp-ind", nh)
        if op in _JCC_COND:
            if nh == ju.target or nh == ju.next_rip:
                return ("jcc", nh)
            return None
        if op is Op.CALL:
            if ju.ka == "I":
                return ("call", nh) if ju.target == nh else None
            return ("call-ind", nh)
        if op is Op.RET:
            return ("ret", nh)
        # CALLRT (runtime services can move the permission epoch), TRAP,
        # EXIT, and slice cuts end a trace.
        return None

    def _form_trace(self, program, variant, head: int, path: List[int],
                    closed: bool):
        """Validate a recorded head path, truncating at the first
        segment that cannot lower or glue, then compile and install the
        trace.  Returns the linked trace function, or None."""
        instructions = program.instructions
        segments = []
        for h in path:
            items = slice_block(instructions, h, _SLICE_LIMIT)
            if not items:
                break
            jus: List[_JU] = []
            for iaddr, instr in items:
                ju = _classify(iaddr, instr)
                if ju is None:
                    break
                jus.append(ju)
            if len(jus) != len(items):
                break
            segments.append((h, items, jus, fuse_slice(items)))
        if not segments:
            return None
        kept = segments[:1]
        glues = []
        for index in range(len(segments) - 1):
            glue = self._glue_for(segments[index][2][-1], segments[index + 1][0])
            if glue is None:
                break
            glues.append(glue)
            kept.append(segments[index + 1])
        is_closed = closed and len(kept) == len(path)
        if is_closed:
            glue = self._glue_for(kept[-1][2][-1], head)
            if glue is None:
                is_closed = False
            else:
                glues.append(glue)
        if not is_closed:
            # Registers live in locals inside a trace; a CALLRT tail would
            # hand the runtime service a stale register file (and lose its
            # writes), so traces stop before runtime calls.
            while kept and kept[-1][2][-1].op is Op.CALLRT:
                kept.pop()
                if glues:
                    glues.pop()
            if len(kept) < 2:
                return None
        compiler = _TraceCompiler(
            head, kept, glues, program.costs, program.monotone(), is_closed,
        )
        source = compiler.generate()
        if is_closed:
            # Second pass: registers never written in the body are
            # loop-invariant, so accesses through them can hoist the
            # address arithmetic and page-view lookups out of the loop.
            invariant = frozenset(compiler.cached) - compiler.written_regs()
            if invariant:
                compiler = _TraceCompiler(
                    head, kept, glues, program.costs, program.monotone(),
                    is_closed, hoist_bases=invariant,
                )
                source = compiler.generate()
        code = compile(source, f"<jit-trace:{head:#x}>", "exec")
        unit = _TraceUnit(
            code, f"t_{head:x}", head,
            "loop" if is_closed else "superblock",
            [segment[0] for segment in kept], compiler.total, compiler.spec,
            compiler.ln if compiler.needs_try else None,
            compiler.xt if compiler.needs_try else None,
        )
        variant.units[("t", head)] = unit
        JIT_STATS["traces_compiled"] += 1
        JIT_STATS["loop_traces" if is_closed else "superblocks"] += 1
        return self._install_trace(variant, head, unit, variant.table[head])

    def _install_trace(self, variant, head: int, unit: _TraceUnit, block_fn):
        namespace = variant.namespace
        if unit.ln_table is not None:
            namespace[f"LNT_{head:x}"] = unit.ln_table
            namespace[f"XT_{head:x}"] = unit.xt_table
        if unit.spec:
            namespace[f"TC_{head:x}"] = [0, 0]
        exec(unit.code, namespace)
        fn = namespace[unit.name]
        variant.trace_epochs.setdefault(head, -1)
        variant.trace_meta[head] = {
            "kind": unit.kind,
            "segments": unit.segments,
            "length": unit.length,
            "block_fn": block_fn,
        }
        variant.table[head] = fn
        return fn

    def _demote_all(self, variant) -> None:
        """Blacklist traces whose specialization guards stormed: restore
        their tier-2 block functions and never re-trace those heads."""
        for head in variant.demote:
            meta = variant.trace_meta.pop(head, None)
            if meta is None:
                continue
            variant.table[head] = meta["block_fn"]
            variant.blacklist.add(head)
            JIT_STATS["traces_blacklisted"] += 1
        del variant.demote[:]

    def _compile_slice(self, program, variant, addr: int) -> Optional[_BlockUnit]:
        items = slice_block(program.instructions, addr, _SLICE_LIMIT)
        if not items:
            return None
        jus: List[_JU] = []
        for iaddr, instr in items:
            ju = _classify(iaddr, instr)
            if ju is None:
                return None
            jus.append(ju)
        fused = fuse_slice(items)
        attribute, count_ops = variant.flags
        compiler = _SliceCompiler(
            addr, items, jus, fused, program.costs, attribute, count_ops,
            monotone=program.monotone(),
        )
        source = compiler.generate()
        code = compile(source, f"<jit:{addr:#x}>", "exec")
        JIT_STATS["blocks_compiled"] += 1
        JIT_STATS["superinstructions_fused"] += len(fused)
        return _BlockUnit(
            code, f"b_{addr:x}", len(items), len(fused),
            x_table=compiler.xb if compiler.needs_try and not compiler.rich else None,
            ln_table=compiler.ln,
            back_target=backward_branch_target(items),
        )

    # -- execution ----------------------------------------------------------

    def execute(self, program, state, res):
        self._drive(program, state, res, None)
        res.exit_code = state._exit_code
        state.process.exit_code = state._exit_code
        return res

    def step(self, program, state, res, max_steps: int) -> bool:
        if state._halted:
            return True
        self._drive(program, state, res, max_steps)
        if state._halted:
            res.exit_code = state._exit_code
            state.process.exit_code = state._exit_code
        return state._halted

    def _drive(self, program, cpu, res, max_steps: Optional[int]):
        if cpu.trace_fn is not None:
            # Trace hooks observe every instruction; the interpreter's
            # hoisted-hook semantics are the contract (profilers ride it),
            # so the whole drive runs on the fast interpreter.
            self._fast._drive(program.fast_program(), cpu, res, max_steps)
            return

        process = cpu.process
        memory = process.memory
        icache = cpu.icache
        variant = program.variant(cpu.attribute_tags, cpu.count_opcodes)
        table_get = variant.table.get
        entries = variant.entries
        no_compile = variant.no_compile
        epochs_get = variant.epochs.get
        pending = variant.pending
        demote = variant.demote
        trace_meta_get = variant.trace_meta.get
        trace_epochs_get = variant.trace_epochs.get

        cpu._bk_shadow = cpu.shadow_stack if cpu.shadow_stack_enabled else None
        cpu._bk_calls = 0
        cpu._bk_rets = 0
        cpu._bk_branches = 0
        cpu._bk_taken = 0
        cpu._bk_traps = 0

        max_total = None if max_steps is None else res.instructions + max_steps
        # Drive-cumulative accounting, flushed into ``res`` at interp
        # boundaries and once at the end: C[0] instructions, C[1] cycle
        # units, C[2] memory ops, C[3]/C[4] i-cache hits/misses, C[5] the
        # folded instruction allowance block prologs compare against,
        # C[6] the drive's mirror of the memory permission epoch, and the
        # result's attribution dicts (aliased, updated in place).
        C = [
            0, 0, 0, 0, 0, 0, memory.perm_epoch,
            res.tag_cycle_units, res.tag_counts, res.opcode_counts,
        ]
        self._allowance(cpu, res, C, max_total)
        r = cpu.regs
        S = icache._sets
        # "Block fully probed" marks describe one i-cache's contents; if a
        # cached program is ever re-driven against a fresh machine state
        # (new, cold i-cache), the marks must not carry over.
        namespace = variant.namespace
        if namespace.get("PD_OWNER") is not icache:
            namespace["PD"].clear()
            namespace["PD_OWNER"] = icache
        interp = self._interp
        promote = self._promote

        try:
            while True:
                rip = cpu.rip
                fn = table_get(rip)
                if fn is None:
                    if rip not in no_compile:
                        count = entries.get(rip, 0) + 1
                        entries[rip] = count
                        if count >= _PROMOTE_THRESHOLD:
                            fn = promote(program, variant, rip)
                    if fn is None:
                        if not interp(program, cpu, res, C, memory, max_total):
                            break
                        continue
                value = fn(cpu, r, S, C)
                if pending:
                    # An armed loop head crossed the trace threshold:
                    # drive through the recorder until the path resolves.
                    value = self._record(program, variant, cpu, r, S, C, rip, value)
                if value is None:
                    break  # EXIT: rip and exit code already set
                if value >= 0:
                    cpu.rip = value
                    continue
                # Deopt escape: the prolog rejected the block or trace
                # (stale fetch epoch, the folded allowance would be
                # exceeded, or a specialization-guard storm).
                addr = ~value
                cpu.rip = addr
                if demote:
                    self._demote_all(variant)
                    continue
                meta = trace_meta_get(addr)
                if meta is not None:
                    if trace_epochs_get(addr, -1) != C[6] and self._revalidate_trace(
                        program, memory, variant, addr, meta, C
                    ):
                        continue
                elif epochs_get(addr, -1) != C[6] and self._revalidate(
                    program, memory, variant.epochs, addr, C
                ):
                    continue
                JIT_STATS["deopts"] += 1
                if not interp(program, cpu, res, C, memory, max_total):
                    break
        finally:
            self._flush(cpu, res, C, icache, process)

    # -- driver helpers -----------------------------------------------------

    def _allowance(self, cpu, res, C, max_total: Optional[int]) -> None:
        """Recompute C[5]: how many more instructions compiled code may
        retire before budget or step-slice limits need interpreter-exact
        handling."""
        limit = cpu.instruction_budget
        if max_total is not None and max_total < limit:
            limit = max_total
        C[5] = limit - res.instructions

    def _flush(self, cpu, res, C, icache, process) -> None:
        """Fold the drive-local accumulators into the result.  Exact under
        integer cycle units; called before every interpreter segment and
        once when the drive ends (including fault exits)."""
        res.instructions += C[0]
        C[0] = 0
        res.cycle_units += C[1]
        C[1] = 0
        res.cycles = res.cycle_units / CYCLE_UNIT
        res.mem_ops += C[2]
        C[2] = 0
        icache.hits += C[3]
        C[3] = 0
        icache.misses += C[4]
        C[4] = 0
        res.icache_hits = icache.hits
        res.icache_misses = icache.misses
        res.calls += cpu._bk_calls
        cpu._bk_calls = 0
        res.rets += cpu._bk_rets
        cpu._bk_rets = 0
        res.branches += cpu._bk_branches
        cpu._bk_branches = 0
        res.branches_taken += cpu._bk_taken
        cpu._bk_taken = 0
        res.traps += cpu._bk_traps
        cpu._bk_traps = 0
        if cpu.attribute_tags and res.tag_cycle_units:
            res.tag_cycles = {
                tag: units / CYCLE_UNIT for tag, units in res.tag_cycle_units.items()
            }
        res.output = process.output

    def _interp(self, program, cpu, res, C, memory, max_total: Optional[int]) -> bool:
        """Run one block-granular span on the reference interpreter,
        directly into ``res`` (exact: all accounting is integer units).
        Returns False when the drive is over (halt or step exhaustion)."""
        self._flush(cpu, res, C, cpu.icache, cpu.process)
        if cpu._halted:
            return False
        if max_total is not None and res.instructions >= max_total:
            return False
        instructions = program.instructions
        get = instructions.get
        addr = cpu.rip
        span = 0
        while span < _SLICE_LIMIT:
            instr = get(addr)
            span += 1
            # A missing instruction is included: the reference loop walks
            # into it and raises the exact fetch fault / InvalidInstruction.
            if instr is None or instr.op in TERMINATOR_OPS:
                break
            addr += instr.size
        if max_total is not None:
            left = max_total - res.instructions
            if span > left:
                span = left
        self._reference._drive(instructions, cpu, res, span)
        C[6] = memory.perm_epoch
        self._allowance(cpu, res, C, max_total)
        if cpu._halted:
            return False
        if max_total is not None and res.instructions >= max_total:
            return False
        return True

    def _revalidate(self, program, memory, epochs, addr: int, C) -> bool:
        """Fetch-check the slice at ``addr`` against current permissions.
        On success the block's epoch is stamped and compiled code may
        skip per-instruction fetch checks; on failure the caller falls
        to the interpreter, which faults with exact counters."""
        try:
            for iaddr, instr in slice_block(program.instructions, addr, _SLICE_LIMIT):
                memory.fetch_check(iaddr, instr.size)
        except MemoryFault:
            return False
        epoch = memory.perm_epoch
        epochs[addr] = epoch
        C[6] = epoch
        return True

    def _revalidate_trace(self, program, memory, variant, head: int,
                          meta, C) -> bool:
        """Fetch-check every constituent slice of a trace against current
        permissions; only then may the whole trace re-enter compiled
        code.  On failure the caller falls to the interpreter, which
        faults with exact counters."""
        try:
            for segment in meta["segments"]:
                for iaddr, instr in slice_block(
                    program.instructions, segment, _SLICE_LIMIT
                ):
                    memory.fetch_check(iaddr, instr.size)
        except MemoryFault:
            return False
        epoch = memory.perm_epoch
        variant.trace_epochs[head] = epoch
        C[6] = epoch
        return True
