"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table1 [--quick]     # Table 1 component overheads
    python -m repro figure6 --jobs 4     # fan runs out over 4 processes
    python -m repro table2 table3 ...    # any subset, in order
    python -m repro all --quick --jobs 4 # everything, reduced inputs
    python -m repro lint --corpus spec   # static verification sweep
    python -m repro chaos --jobs 4       # fault-injection matrix
    python -m repro profile xz           # hot-path cycle profile
    python -m repro bench --quick --out BENCH_smoke.json

``--quick`` shrinks benchmark subsets and seed counts so a full pass
finishes in a couple of minutes; omit it for the benchmark-suite-sized
runs (identical to ``pytest benchmarks/``).  ``--jobs N`` runs
independent (benchmark × machine × config × seed) cells on N worker
processes; results are identical to the serial path.  ``--records-out
PATH`` appends one JSONL record per executed run for offline analysis.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval import experiments, report
from repro.eval.engine import ExperimentEngine, set_session_engine
from repro.machine.backends import available_backends

QUICK_BENCHMARKS = ["perlbench", "mcf", "lbm", "omnetpp", "xalancbmk", "xz"]


def run_table1(quick: bool) -> str:
    rows = experiments.experiment_table1(
        seeds=(1,) if quick else (1, 2),
        benchmarks=QUICK_BENCHMARKS if quick else None,
    )
    return report.render_table1(rows)


def run_table2(quick: bool) -> str:
    counts = experiments.experiment_table2(inputs=(1,) if quick else (1, 2, 3))
    return report.render_table2(counts)


def run_figure6(quick: bool) -> str:
    data = experiments.experiment_figure6(
        seeds=(1,) if quick else (1, 2),
        benchmarks=QUICK_BENCHMARKS if quick else None,
    )
    return report.render_figure6(data)


def run_webserver(quick: bool) -> str:
    data = experiments.experiment_webserver(
        requests=80 if quick else 150, seeds=(1,) if quick else (1, 2)
    )
    return report.render_webserver(data)


def run_memory(quick: bool) -> str:
    data = experiments.experiment_memory(
        benchmarks=QUICK_BENCHMARKS if quick else None
    )
    return report.render_memory(data)


def run_scalability(quick: bool) -> str:
    rows = experiments.experiment_scalability(sizes=(100, 300) if quick else (200, 600, 1800))
    return report.render_scalability(rows)


def run_table3(quick: bool) -> str:
    matrix = experiments.experiment_table3(trials=1 if quick else 3)
    return report.render_table3(matrix)


def run_security(quick: bool) -> str:
    data = experiments.experiment_security_probabilities(
        mc_trials=20_000 if quick else 200_000,
        stack_samples=6 if quick else 25,
    )
    return report.render_security_probabilities(data)


def run_sweeps(quick: bool) -> str:
    btra = experiments.experiment_btra_sweep(
        counts=(2, 10) if quick else (2, 5, 10, 15, 20)
    )
    btdp = experiments.experiment_btdp_sweep(
        maxima=(0, 5) if quick else (0, 2, 5, 8),
        stack_samples=3 if quick else 8,
    )
    return report.render_btra_sweep(btra) + "\n\n" + report.render_btdp_sweep(btdp)


def run_optlevels(quick: bool) -> str:
    data = experiments.experiment_opt_levels(
        redundancies=(0, 25) if quick else (0, 10, 25)
    )
    return report.render_opt_levels(data)


def run_decomposition(quick: bool) -> str:
    data = experiments.experiment_overhead_decomposition(
        benchmark="xz" if quick else "omnetpp"
    )
    return report.render_decomposition(data)


def run_supervised(quick: bool) -> str:
    rows = experiments.experiment_supervised(trials=1 if quick else 3)
    return report.render_supervised(rows)


def run_chaos_command(args) -> int:
    """``python -m repro chaos``: fault-injection matrix over the engine.

    Exits 1 unless every injected fault surfaced as its expected outcome
    with a full request-ordered record list, so CI can gate on it.
    With ``--fleet``, chaos instead targets the serving layer: seeded
    worker kills/hangs, attack-probe arrivals, and compile faults against
    a live fleet, gating on the zero-lost-requests contract.
    """
    from repro.reliability.chaos import run_chaos, run_fleet_chaos

    started = time.perf_counter()
    if args.fleet:
        fleet_report = run_fleet_chaos(
            backend=args.backend, seed=args.seed, workers=args.workers
        )
        serving = fleet_report.serving
        outcomes = " ".join(
            f"{name}={count}"
            for name, count in sorted(serving.get("outcomes", {}).items())
        )
        print(
            f"Fleet chaos: workers={fleet_report.workers} "
            f"backend={fleet_report.backend} seed={fleet_report.seed}"
        )
        print(f"  arrivals {serving.get('arrivals', 0)}  ({outcomes})")
        print(
            f"  kills {serving.get('kills', 0)}  hangs {serving.get('hangs', 0)}  "
            f"compile faults {serving.get('compile_faults', 0)}  "
            f"swaps {serving.get('swaps', 0)}  restarts {serving.get('restarts', 0)}"
        )
        if fleet_report.ok:
            print("chaos: OK — the fleet resolved every request under fire")
        else:
            print(f"chaos: {len(fleet_report.violations)} violation(s):")
            for violation in fleet_report.violations:
                print(f"  {violation}")
        print(f"[{time.perf_counter() - started:.1f}s]")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(fleet_report.to_json() + "\n")
            print(f"[chaos report -> {args.out}]")
        return 0 if fleet_report.ok else 1
    chaos_report = run_chaos(
        jobs=args.jobs, backend=args.backend, seed=args.seed, timeout=args.timeout
    )
    print(report.render_chaos(chaos_report))
    print(f"[{time.perf_counter() - started:.1f}s]")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(chaos_report.to_json() + "\n")
        print(f"[chaos report -> {args.out}]")
    return 0 if chaos_report.ok else 1


def chaos_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Inject every fault kind (bitflips, allocator OOM, "
        "compile errors, worker crashes, worker hangs) into real workloads "
        "and assert the experiment engine degrades them into structured "
        "failure records instead of losing the batch.",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes (default: 2; crashes/hangs need a pool)",
    )
    parser.add_argument(
        "--backend",
        default="reference",
        choices=available_backends(),
        help="execution backend (default: reference)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N", help="fault-plan seed (default: 0)"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="per-batch wall-clock deadline in seconds (default: 10)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the chaos report as JSON"
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="chaos the serving layer instead: kill/hang worker fractions, "
        "attack probes, and compile faults against a live fleet",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="fleet worker count for --fleet (default: 4)",
    )
    args = parser.parse_args(argv)
    return run_chaos_command(args)


def run_lint_command(args) -> int:
    """``python -m repro lint``: the static verification sweep.

    Exits 1 on any finding, so CI can gate on it directly.
    """
    from repro.analysis.lint import run_lint

    started = time.perf_counter()
    lint_report = run_lint(
        args.corpus,
        seeds=args.seeds,
        config=args.config,
        quick=args.quick,
        run=args.run,
    )
    print(report.render_lint(lint_report))
    print(f"[{time.perf_counter() - started:.1f}s]")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(lint_report.to_json() + "\n")
        print(f"[findings report -> {args.out}]")
    return 0 if lint_report.ok else 1


def lint_main(argv) -> int:
    from repro.analysis.lint import CONFIGS, CORPORA

    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Statically verify compiled corpora: IR well-formedness, "
        "stack/unwind invariants, BTRA/BTDP/trap placement, and "
        "diversification entropy.",
    )
    parser.add_argument(
        "--corpus", default="spec", choices=CORPORA, help="corpus to verify"
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N", help="seeds per module (default: 3)"
    )
    parser.add_argument(
        "--config",
        default="full",
        choices=sorted(CONFIGS),
        help="diversification config to verify under (default: full)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced corpus sizes for CI smoke legs"
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="also execute each cell with RunRequest.verify set",
    )
    parser.add_argument(
        "--backend",
        default="reference",
        choices=available_backends(),
        help="execution backend for --run cells",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes for --run cells"
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the findings report as JSON"
    )
    args = parser.parse_args(argv)
    engine = set_session_engine(ExperimentEngine(jobs=args.jobs, backend=args.backend))
    try:
        return run_lint_command(args)
    finally:
        engine.close()


def profile_main(argv) -> int:
    """``python -m repro profile``: per-function/per-RIP cycle attribution.

    Compiles one SPEC workload, runs it with a :class:`CycleProfiler`
    attached, and prints the hot-path report.  ``--folded`` writes
    flamegraph-ready folded stacks; ``--trace`` additionally captures the
    compile/run span tree as Chrome ``trace_event`` JSON (load it in
    ``chrome://tracing`` or Perfetto).
    """
    from repro.core.compiler import R2CCompiler
    from repro.core.config import R2CConfig
    from repro.machine.loader import load_binary, make_cpu
    from repro.obs.profiler import CycleProfiler
    from repro.obs.tracing import enable_tracing, get_collector
    from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Profile one workload: per-function and per-address "
        "cycle attribution with BTRA-safe call stacks.",
    )
    parser.add_argument(
        "workload", choices=sorted(SPEC_BENCHMARKS), help="SPEC workload to profile"
    )
    parser.add_argument(
        "--config",
        default="full",
        choices=("baseline", "full"),
        help="diversification config (default: full)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, metavar="N", help="compile seed (default: 1)"
    )
    parser.add_argument(
        "--load-seed", type=int, default=1, metavar="N", help="loader ASLR seed"
    )
    parser.add_argument(
        "--machine", default="epyc-rome", help="cost model (default: epyc-rome)"
    )
    parser.add_argument(
        "--backend",
        default="reference",
        choices=available_backends(),
        help="execution backend (default: reference; profiles are "
        "byte-identical either way)",
    )
    parser.add_argument(
        "--top", type=int, default=15, metavar="N", help="rows per report table"
    )
    parser.add_argument(
        "--folded", default=None, metavar="PATH", help="write folded stacks for flamegraphs"
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH", help="write Chrome trace_event JSON"
    )
    args = parser.parse_args(argv)

    if args.trace:
        enable_tracing(True)
    started = time.perf_counter()
    if args.config == "full":
        config = R2CConfig.full(seed=args.seed)
    else:
        config = R2CConfig.baseline(seed=args.seed)
    module = build_spec_benchmark(args.workload)
    binary = R2CCompiler(config).compile(module)
    process = load_binary(binary, seed=args.load_seed)
    cpu = make_cpu(process, args.machine, backend=args.backend, attribute_tags=True)
    profiler = CycleProfiler(cpu)
    result = cpu.run()
    print(profiler.report(top=args.top))
    print()
    counters = result.perf_counters()
    print(
        f"counters: {counters.instructions} instructions, "
        f"{counters.cycles:.0f} cycles, "
        f"i-cache miss rate {100.0 * counters.icache_miss_rate:.2f}%, "
        f"{counters.branches_taken}/{counters.branches} branches taken, "
        f"{counters.btra_events} BTRA / {counters.btdp_events} BTDP events"
    )
    print(f"[{time.perf_counter() - started:.1f}s]")
    if args.folded:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(profiler.folded_stacks() + "\n")
        print(f"[folded stacks -> {args.folded}]")
    if args.trace:
        get_collector().write_chrome_trace(args.trace)
        print(f"[chrome trace -> {args.trace}]")
    return 0


def disasm_blocks_main(argv) -> int:
    """``python -m repro disasm-blocks``: the tier-1 block CFG of one
    workload.

    Compiles and loads the workload exactly as a run would, recovers the
    basic-block CFG from the bound micro-op program
    (:func:`repro.machine.blocks.recover_blocks`), and prints one section
    per block: address range, instruction count, the tier the
    progressive-lowering pipeline takes it to (2 = compiles to a block
    function, 1 = interpreter-only, with the disqualifying reason),
    superinstruction fusion annotations, and static successor edges.

    With ``--traces`` the workload is additionally *run* under the jit
    backend (tier 3 governed by ``--tier3/--no-tier3``) and the dump
    gains the recorded traces — kind, segment list, length — plus a
    per-block membership annotation.  Traces are dynamic (recorded from
    hot paths), so this is the only part of the dump that needs a run.
    """
    from repro.core.compiler import R2CCompiler
    from repro.core.config import R2CConfig
    from repro.machine.blocks import recover_blocks
    from repro.machine.loader import load_binary, make_cpu
    from repro.machine.uops import get_bound_program
    from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark

    parser = argparse.ArgumentParser(
        prog="python -m repro disasm-blocks",
        description="Print the recovered basic-block CFG of one workload "
        "with per-block lowering tiers and fusion annotations.",
    )
    parser.add_argument(
        "workload", choices=sorted(SPEC_BENCHMARKS), help="SPEC workload to disassemble"
    )
    parser.add_argument(
        "--config",
        default="full",
        choices=("baseline", "full"),
        help="diversification config (default: full)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, metavar="N", help="compile seed (default: 1)"
    )
    parser.add_argument(
        "--load-seed", type=int, default=1, metavar="N", help="loader ASLR seed"
    )
    parser.add_argument(
        "--machine", default="epyc-rome", help="cost model (default: epyc-rome)"
    )
    parser.add_argument(
        "--tier", type=int, default=None, choices=(1, 2), help="only blocks at this tier"
    )
    parser.add_argument(
        "--traces",
        action="store_true",
        help="run the workload under the jit backend and show tier-3 traces",
    )
    tier3_group = parser.add_mutually_exclusive_group()
    tier3_group.add_argument(
        "--tier3",
        dest="tier3",
        action="store_true",
        default=True,
        help="enable tier-3 trace compilation for --traces (default)",
    )
    tier3_group.add_argument(
        "--no-tier3",
        dest="tier3",
        action="store_false",
        help="disable tier-3 trace compilation for --traces",
    )
    args = parser.parse_args(argv)

    if args.config == "full":
        config = R2CConfig.full(seed=args.seed)
    else:
        config = R2CConfig.baseline(seed=args.seed)
    module = build_spec_benchmark(args.workload)
    binary = R2CCompiler(config).compile(module)
    process = load_binary(binary, seed=args.load_seed)
    cpu = make_cpu(process, args.machine)
    program = recover_blocks(get_bound_program(process, cpu.costs))
    stats = program.stats()
    print(
        f"{args.workload} ({args.config}, seed {args.seed}): "
        f"{stats['blocks']} blocks, {stats['tier2_blocks']} at tier 2, "
        f"{stats['tier1_blocks']} at tier 1, "
        f"{stats['superinstructions_fused']} superinstructions fused"
    )
    # Tier-3 trace membership needs a run: traces are recorded from hot
    # dynamic paths.  Run a fresh process so the CFG dump above stays a
    # pre-run view.
    traces: dict = {}
    membership: dict = {}
    if args.traces:
        from repro.machine.backends import get_backend
        from repro.machine.cpu import ExecutionResult
        from repro.machine.jit import set_tier3
        from repro.machine.state import MachineState

        previous = set_tier3(args.tier3)
        try:
            impl = get_backend("jit")
            run_process = load_binary(binary, seed=args.load_seed)
            state = MachineState(run_process, cpu.costs)
            state.rip = run_process.entry_point
            state._halted = False
            jit_program = impl.prepare(state)
            impl.execute(jit_program, state, ExecutionResult())
            traces = jit_program.trace_info()
        finally:
            set_tier3(previous)
        for head, info in traces.items():
            for segment in info["segments"]:
                membership.setdefault(segment, []).append((head, info["kind"]))
        print(
            f"traces: {len(traces)} recorded "
            f"({sum(1 for i in traces.values() if i['kind'] == 'loop')} loop, "
            f"{sum(1 for i in traces.values() if i['kind'] == 'superblock')} "
            f"superblock)"
        )
    # Address -> symbol for block-head labels (function heads only).
    symbols = {
        address: name
        for name, address in sorted(process.symbols.items())
        if "::" not in name
    }
    for block in program.blocks:
        if args.tier is not None and block.tier != args.tier:
            continue
        label = symbols.get(block.addr)
        where = f" <{label}>" if label else ""
        print(
            f"\nblock {block.bid}{where}: [{block.addr:#x}, {block.end:#x}) "
            f"{len(block)} uops, tier {block.tier}"
        )
        if block.reason:
            print(f"  stays tier 1: {block.reason}")
        for kind, start, count in block.fused:
            first = block.uops[start]
            print(f"  fused {kind}: {count} uops from {first.rip:#x}")
        for head, kind in membership.get(block.addr, ()):
            note = " (head)" if head == block.addr else ""
            print(f"  in trace {head:#x} ({kind}){note}")
        for kind, target in block.successors():
            where = f"{target:#x}" if target is not None else "dynamic"
            print(f"  -> {kind} {where}")
    for head, info in sorted(traces.items()):
        print(
            f"\ntrace {head:#x}: {info['kind']}, "
            f"{len(info['segments'])} segments, {info['length']} instructions"
        )
        print("  segments: " + ", ".join(f"{s:#x}" for s in info["segments"]))
    return 0


def mvee_main(argv) -> int:
    """``python -m repro mvee``: run N variants in batched lockstep.

    Two modes:

    * **attack** (default): compile N differently-diversified builds,
      replicate a scripted attack's writes from the leader into the
      followers, and cross-check — the Section 7.3 MVEE combination.
    * **bitflip** (``--bitflip-seed N``): run N replicas of one build
      with seeded memory corruption in one follower; replica mode pins
      the divergence to a variant, sync point, and register.

    ``--out`` writes a ``repro-divergence/v1`` JSON artifact (CI uploads
    it).  Exits 1 only when every variant was compromised identically —
    the one outcome an MVEE deployment cannot detect.
    """
    import json

    from repro.attacks.aocr import make_aocr_hook
    from repro.attacks.fengshui import make_fengshui_hook
    from repro.attacks.rop import make_rop_hook
    from repro.core.config import R2CConfig
    from repro.defenses.lockstep import MveeOutcome, run_bitflip_lockstep
    from repro.defenses.mvee import MVEE

    hooks = {
        "aocr": make_aocr_hook,
        "rop": make_rop_hook,
        "fengshui": make_fengshui_hook,
        "none": lambda: None,
    }
    configs = {
        "full": R2CConfig.full,
        "baseline": R2CConfig.baseline,
    }
    parser = argparse.ArgumentParser(
        prog="python -m repro mvee",
        description="Run N diversified variants in batched lockstep and "
        "cross-check their behaviour (the Section 7.3 MVEE combination).",
    )
    parser.add_argument(
        "--variants", type=int, default=2, metavar="N", help="variant count (default: 2)"
    )
    parser.add_argument(
        "--attack",
        default="aocr",
        choices=sorted(hooks),
        help="scripted attack replicated into the followers (default: aocr)",
    )
    parser.add_argument(
        "--config",
        default="full",
        choices=sorted(configs),
        help="diversification config per variant (default: full)",
    )
    parser.add_argument(
        "--build-seed", type=int, default=0, metavar="N", help="base compile seed"
    )
    parser.add_argument(
        "--attacker-seed", type=int, default=0, metavar="N", help="attacker RNG seed"
    )
    parser.add_argument(
        "--backend",
        default="fast",
        choices=available_backends(),
        help="execution backend (default: fast)",
    )
    parser.add_argument(
        "--sync-every", type=int, default=256, metavar="N", help="cross-check batch size"
    )
    parser.add_argument(
        "--bitflip-seed",
        type=int,
        default=None,
        metavar="N",
        help="replica mode: seed N bitflips into one follower instead of attacking",
    )
    parser.add_argument(
        "--flips", type=int, default=96, metavar="N", help="bitflip count (replica mode)"
    )
    parser.add_argument(
        "--corrupt-variant",
        type=int,
        default=1,
        metavar="I",
        help="which follower takes the bitflips (replica mode, default: 1)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the divergence report as JSON"
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    if args.bitflip_seed is not None:
        mode = "bitflip"
        lockstep = run_bitflip_lockstep(
            variants=args.variants,
            corrupt_variant=args.corrupt_variant,
            fault_seed=args.bitflip_seed,
            flips=args.flips,
            backend=args.backend,
            sync_every=min(args.sync_every, 64),
        )
        outcome, divergence, sync_points = (
            lockstep.outcome,
            lockstep.divergence,
            lockstep.sync_points,
        )
        for variant in lockstep.variants:
            corrupt = " (corrupted)" if variant.index == args.corrupt_variant else ""
            print(
                f"  v{variant.index}: {variant.status} "
                f"after {variant.result.instructions} instructions{corrupt}"
            )
    else:
        mode = f"attack:{args.attack}"
        mvee = MVEE(
            configs[args.config](),
            variants=args.variants,
            build_seed=args.build_seed,
            backend=args.backend,
            sync_every=args.sync_every,
        )
        result = mvee.run(hooks[args.attack](), attacker_seed=args.attacker_seed)
        outcome, divergence, sync_points = (
            result.outcome,
            result.divergence,
            result.sync_points,
        )
        for index, run in enumerate(result.variants):
            goal = " [attacker goal reached]" if run.attacked_success else ""
            print(f"  v{index}: {run.status} exit={run.exit_code}{goal}")
        for note in result.notes:
            print(f"  note: {note}")
    print(f"outcome: {outcome.value} ({sync_points} sync points)")
    if divergence is not None:
        print(f"  {divergence.summary_line()}")
    print(f"[{time.perf_counter() - started:.1f}s]")
    if args.out:
        payload = {
            "schema": "repro-divergence/v1",
            "mode": mode,
            "variants": args.variants,
            "backend": args.backend,
            "outcome": outcome.value,
            "sync_points": sync_points,
            "divergence": divergence.to_dict() if divergence else None,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"[divergence report -> {args.out}]")
    return 1 if outcome is MveeOutcome.COMPROMISED else 0


def bench_main(argv) -> int:
    """``python -m repro bench``: the benchmark regression harness.

    Writes one schema-versioned JSON artifact per invocation (the
    benchmark trajectory) and exits 1 on any non-ok cell or
    schema-invalid artifact, so CI can gate on it.
    """
    import json

    from repro.obs.bench import run_bench, run_lockstep_bench, validate

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the (workload x config) benchmark grid and record "
        "simulated cycles, cache behavior, wall time, and engine failures "
        "as a repro-bench/v1 JSON artifact.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced workload set for CI smoke legs"
    )
    parser.add_argument(
        "--backend",
        default="reference",
        choices=available_backends(),
        help="execution backend (default: reference)",
    )
    parser.add_argument(
        "--machine", default="epyc-rome", help="cost model (default: epyc-rome)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes (default: 1)"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default: BENCH_<date>.json)",
    )
    parser.add_argument(
        "--lockstep",
        type=int,
        default=0,
        metavar="N",
        help="also run the N-variant lockstep leg (webserver replicas; "
        "records the amortized-decode cost ratio)",
    )
    tier3_group = parser.add_mutually_exclusive_group()
    tier3_group.add_argument(
        "--tier3",
        dest="tier3",
        action="store_true",
        default=True,
        help="enable tier-3 trace compilation in the jit backend (default)",
    )
    tier3_group.add_argument(
        "--no-tier3",
        dest="tier3",
        action="store_false",
        help="disable tier-3 trace compilation (tier-2 blocks only)",
    )
    args = parser.parse_args(argv)
    out = args.out or time.strftime("BENCH_%Y-%m-%d.json")

    from repro.machine.jit import set_tier3

    previous_tier3 = set_tier3(args.tier3)
    started = time.perf_counter()
    try:
        bench_report = run_bench(
            backend=args.backend, machine=args.machine, jobs=args.jobs,
            quick=args.quick,
        )
        if args.lockstep:
            bench_report.lockstep = run_lockstep_bench(
                variants=args.lockstep, backend=args.backend, machine=args.machine
            )
            lock = bench_report.lockstep
            print(
                f"lockstep x{lock['variants']}: {lock['outcome']}, "
                f"cost ratio {lock['cost_ratio']}x "
                f"({lock['lockstep']['wall_seconds']}s vs "
                f"{lock['single']['wall_seconds']}s single)"
            )
    finally:
        set_tier3(previous_tier3)
    print(report.render_bench(bench_report))
    print(f"[{time.perf_counter() - started:.1f}s]")
    text = bench_report.to_json()
    problems = validate(json.loads(text))
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"[bench artifact -> {out}]")
    for problem in problems:
        print(f"schema violation: {problem}", file=sys.stderr)
    return 0 if bench_report.ok and not problems else 1


def fleet_main(argv) -> int:
    """``python -m repro fleet``: the serving-axis benchmark.

    Drives a supervised victim fleet with seeded open-loop load (optionally
    under chaos), prints the serving report, and writes a validating
    ``repro-bench/v1`` artifact with the ``serving`` section.  Exits 1 if
    any request was lost, the artifact fails validation, or — with
    ``--chaos`` — nothing actually went wrong (an un-exercised chaos leg
    is a broken chaos leg).
    """
    import json

    from repro.fleet.loadgen import run_fleet
    from repro.obs.bench import validate

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Schedule seeded open-loop load across a pool of "
        "supervised victim workers with admission control, hedged "
        "retries, deadlines, and MARDU-style rolling re-randomization; "
        "report p50/p99 latency, sustained RPS, shed/retry/swap counts, "
        "and the attacker window as a repro-bench/v1 artifact.",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="victim worker slots (default: 4)",
    )
    parser.add_argument(
        "--rps", type=float, default=300.0, metavar="R",
        help="offered load, requests per virtual second (default: 300)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0, metavar="S",
        help="virtual seconds of load (default: 2.0)",
    )
    parser.add_argument(
        "--rerand-interval", type=float, default=1.0, metavar="K",
        help="per-worker re-randomization period in virtual seconds "
        "(default: 1.0; 0 disables rotation)",
    )
    parser.add_argument(
        "--deadline", type=float, default=0.1, metavar="S",
        help="per-request deadline in virtual seconds (default: 0.1)",
    )
    parser.add_argument(
        "--backend",
        default="fast",
        choices=available_backends(),
        help="execution backend for the measured service profiles "
        "(default: fast; metrics are backend-invariant)",
    )
    parser.add_argument(
        "--machine", default="epyc-rome", help="cost model (default: epyc-rome)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="load/chaos/diversification seed (default: 0)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="arm seeded worker kills/hangs, attack probes, and compile "
        "faults; the run must still resolve every request",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared on-disk compile cache (workers and repeat runs "
        "single-flight their builds through it)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="artifact path (default: BENCH_fleet_<date>.json)",
    )
    args = parser.parse_args(argv)
    out = args.out or time.strftime("BENCH_fleet_%Y-%m-%d.json")

    started = time.perf_counter()
    fleet_report = run_fleet(
        workers=args.workers,
        rps=args.rps,
        duration_seconds=args.duration,
        rerand_interval=args.rerand_interval or None,
        backend=args.backend,
        machine=args.machine,
        seed=args.seed,
        chaos=args.chaos,
        cache_dir=args.cache_dir,
        deadline_seconds=args.deadline,
    )
    print(report.render_fleet(fleet_report))
    print(f"[{time.perf_counter() - started:.1f}s]")

    bench_report = fleet_report.to_bench_report()
    text = bench_report.to_json()
    problems = validate(json.loads(text))
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"[fleet artifact -> {out}]")
    for problem in problems:
        print(f"schema violation: {problem}", file=sys.stderr)
    ok = fleet_report.zero_lost and not problems
    if args.chaos and fleet_report.kills + fleet_report.hangs == 0:
        print("chaos armed but no worker was killed or hung", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def mine_main(argv) -> int:
    """``python -m repro mine``: the static gadget dataflow miner.

    Compiles N seed variants of one workload, censuses every ROP/JOP
    gadget by semantic summary (:mod:`repro.analysis.gadgets`),
    intersects the censuses for invariant gadgets (position-pinned and
    position-independent), synthesizes attack chains against the first
    variant, concretely re-executes a sample of summaries on the
    reference backend, and writes a ``repro-gadgets/v1`` artifact.
    Exits 1 on any summary/concrete mismatch or schema violation.
    """
    import json

    from repro.analysis.gadgets import GADGET_WINDOW, mine, validate
    from repro.analysis.lint import CONFIGS
    from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark

    workloads = sorted(SPEC_BENCHMARKS) + ["victim", "webserver"]
    parser = argparse.ArgumentParser(
        prog="python -m repro mine",
        description="Mine ROP/JOP gadgets across N diversified variants: "
        "semantic census, invariant-gadget intersection, chain synthesis, "
        "and a repro-gadgets/v1 artifact.",
    )
    parser.add_argument("workload", choices=workloads, help="workload to mine")
    parser.add_argument(
        "--variants",
        type=int,
        default=3,
        metavar="N",
        help="seed variants to census (default: 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, metavar="N", help="first variant seed (default: 1)"
    )
    parser.add_argument(
        "--config",
        default="full",
        choices=sorted(CONFIGS),
        help="diversification config to mine under (default: full)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=GADGET_WINDOW,
        metavar="N",
        help=f"longest gadget suffix in instructions (default: {GADGET_WINDOW})",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the artifact as JSON"
    )
    args = parser.parse_args(argv)
    if args.variants < 2:
        parser.error("--variants must be at least 2")

    if args.workload == "victim":
        from repro.workloads.victim import build_victim

        module = build_victim()
    elif args.workload == "webserver":
        from repro.workloads.webserver import SERVERS, build_webserver

        module = build_webserver(SERVERS[0])
    else:
        module = build_spec_benchmark(args.workload)
    config = CONFIGS[args.config](args.seed)
    seeds = [args.seed + index for index in range(args.variants)]

    started = time.perf_counter()
    mine_report = mine(
        module,
        config,
        seeds,
        workload=args.workload,
        config_name=args.config,
        window=args.window,
    )
    print(mine_report.render())
    print(f"[{time.perf_counter() - started:.1f}s]")
    text = mine_report.to_json()
    problems = validate(json.loads(text))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"[gadget artifact -> {args.out}]")
    for problem in problems:
        print(f"schema violation: {problem}", file=sys.stderr)
    return 0 if mine_report.ok and not problems else 1


EXPERIMENTS = {
    "table1": (run_table1, "Table 1: component overheads"),
    "table2": (run_table2, "Table 2: call frequencies"),
    "figure6": (run_figure6, "Figure 6: full R2C on four machines"),
    "webserver": (run_webserver, "Section 6.2.4: webserver throughput"),
    "memory": (run_memory, "Section 6.2.5: memory overhead"),
    "scalability": (run_scalability, "Section 6.3: browser-scale compilation"),
    "table3": (run_table3, "Table 3: attacks vs defenses"),
    "security": (run_security, "Sections 7.2.1/7.2.3: guessing probabilities"),
    "sweeps": (run_sweeps, "Parameter sweeps: BTRA count / BTDP density"),
    "optlevels": (run_optlevels, "Overhead by optimization level"),
    "decomposition": (run_decomposition, "Overhead decomposition by instruction tag"),
    "supervised": (run_supervised, "Section 4.2: restart policies vs crash probing"),
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # lint has its own flag set (corpus/seeds/config), so it gets its
        # own parser instead of riding the experiment options.
        return lint_main(list(argv[1:]))
    if argv and argv[0] == "chaos":
        # chaos likewise: it builds its own fault-armed engine.
        return chaos_main(list(argv[1:]))
    if argv and argv[0] == "profile":
        return profile_main(list(argv[1:]))
    if argv and argv[0] == "disasm-blocks":
        return disasm_blocks_main(list(argv[1:]))
    if argv and argv[0] == "bench":
        return bench_main(list(argv[1:]))
    if argv and argv[0] == "mvee":
        return mvee_main(list(argv[1:]))
    if argv and argv[0] == "mine":
        return mine_main(list(argv[1:]))
    if argv and argv[0] == "fleet":
        return fleet_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the R2C paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"'list', 'all', or any of: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced inputs (~minutes, not tens of minutes)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent runs (default: 1, serial)",
    )
    parser.add_argument(
        "--backend",
        default="reference",
        choices=available_backends(),
        help="execution backend for all runs (default: reference; "
        "'fast' uses the pre-decoded micro-op pipeline, same results)",
    )
    parser.add_argument(
        "--records-out",
        default=None,
        metavar="PATH",
        help="append per-run JSONL records to PATH",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name, (_, title) in EXPERIMENTS.items():
            print(f"  {name:13s} {title}")
        print(f"  {'lint':13s} Static verification sweep (own flags; see lint --help)")
        print(f"  {'chaos':13s} Fault-injection matrix (own flags; see chaos --help)")
        print(f"  {'profile':13s} Hot-path cycle profile (own flags; see profile --help)")
        print(f"  {'disasm-blocks':13s} Tier-1 block CFG dump (own flags; see disasm-blocks --help)")
        print(f"  {'bench':13s} Benchmark regression harness (own flags; see bench --help)")
        print(f"  {'mvee':13s} N-variant lockstep cross-check (own flags; see mvee --help)")
        print(f"  {'mine':13s} Static gadget dataflow miner (own flags; see mine --help)")
        print(f"  {'fleet':13s} Supervised victim fleet serving bench (own flags; see fleet --help)")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; try 'list'")
    if args.records_out:
        # Fail before hours of experiments, not after.
        try:
            open(args.records_out, "a", encoding="utf-8").close()
        except OSError as error:
            parser.error(f"--records-out {args.records_out}: {error}")

    engine = set_session_engine(ExperimentEngine(jobs=args.jobs, backend=args.backend))
    try:
        for name in names:
            fn, title = EXPERIMENTS[name]
            print(f"=== {title} ===")
            started = time.perf_counter()
            print(fn(args.quick))
            print(f"[{time.perf_counter() - started:.1f}s]")
            print()
        if engine.records:
            print(report.render_engine_summary(engine.summary()))
        if args.records_out:
            count = engine.write_records(args.records_out)
            print(f"[{count} run records -> {args.records_out}]")
    finally:
        engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
