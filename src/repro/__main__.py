"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table1 [--quick]     # Table 1 component overheads
    python -m repro figure6 [--quick]    # Figure 6 per-machine overheads
    python -m repro table2 table3 ...    # any subset, in order
    python -m repro all --quick          # everything, reduced inputs

``--quick`` shrinks benchmark subsets and seed counts so a full pass
finishes in a couple of minutes; omit it for the benchmark-suite-sized
runs (identical to ``pytest benchmarks/``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval import experiments, report

QUICK_BENCHMARKS = ["perlbench", "mcf", "lbm", "omnetpp", "xalancbmk", "xz"]


def run_table1(quick: bool) -> str:
    rows = experiments.experiment_table1(
        seeds=(1,) if quick else (1, 2),
        benchmarks=QUICK_BENCHMARKS if quick else None,
    )
    return report.render_table1(rows)


def run_table2(quick: bool) -> str:
    counts = experiments.experiment_table2(inputs=(1,) if quick else (1, 2, 3))
    return report.render_table2(counts)


def run_figure6(quick: bool) -> str:
    data = experiments.experiment_figure6(
        seeds=(1,) if quick else (1, 2),
        benchmarks=QUICK_BENCHMARKS if quick else None,
    )
    return report.render_figure6(data)


def run_webserver(quick: bool) -> str:
    data = experiments.experiment_webserver(
        requests=80 if quick else 150, seeds=(1,) if quick else (1, 2)
    )
    return report.render_webserver(data)


def run_memory(quick: bool) -> str:
    data = experiments.experiment_memory(
        benchmarks=QUICK_BENCHMARKS if quick else None
    )
    return report.render_memory(data)


def run_scalability(quick: bool) -> str:
    rows = experiments.experiment_scalability(sizes=(100, 300) if quick else (200, 600, 1800))
    return report.render_scalability(rows)


def run_table3(quick: bool) -> str:
    matrix = experiments.experiment_table3(trials=1 if quick else 3)
    return report.render_table3(matrix)


def run_security(quick: bool) -> str:
    data = experiments.experiment_security_probabilities(
        mc_trials=20_000 if quick else 200_000,
        stack_samples=6 if quick else 25,
    )
    return report.render_security_probabilities(data)


EXPERIMENTS = {
    "table1": (run_table1, "Table 1: component overheads"),
    "table2": (run_table2, "Table 2: call frequencies"),
    "figure6": (run_figure6, "Figure 6: full R2C on four machines"),
    "webserver": (run_webserver, "Section 6.2.4: webserver throughput"),
    "memory": (run_memory, "Section 6.2.5: memory overhead"),
    "scalability": (run_scalability, "Section 6.3: browser-scale compilation"),
    "table3": (run_table3, "Table 3: attacks vs defenses"),
    "security": (run_security, "Sections 7.2.1/7.2.3: guessing probabilities"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the R2C paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"'list', 'all', or any of: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced inputs (~minutes, not tens of minutes)"
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name, (_, title) in EXPERIMENTS.items():
            print(f"  {name:12s} {title}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; try 'list'")

    for name in names:
        fn, title = EXPERIMENTS[name]
        print(f"=== {title} ===")
        started = time.perf_counter()
        print(fn(args.quick))
        print(f"[{time.perf_counter() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
