"""Shared 64-bit two's-complement arithmetic helpers.

The machine interpreter (:mod:`repro.machine.cpu`), the micro-op backends
(:mod:`repro.machine.backends`) and the golden-model IR interpreter
(:mod:`repro.toolchain.interp`) must agree bit-for-bit on signed 64-bit
semantics — the property-based equivalence suite compares their outputs
directly.  They therefore share this single implementation instead of
keeping per-module copies that could drift.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    return value & MASK64


def truncated_div(dividend: int, divisor: int) -> int:
    """Exact signed division truncating toward zero (C semantics)."""
    quotient = abs(dividend) // abs(divisor)
    return -quotient if (dividend < 0) != (divisor < 0) else quotient
