"""The modelled calling convention (System V x86-64 flavoured).

* The first six arguments travel in ``rdi, rsi, rdx, rcx, r8, r9``;
  further arguments are pushed on the stack above the return address —
  the case that forces offset-invariant addressing under BTRAs
  (Section 5.1.1 of the paper).
* ``rax`` carries the return value and doubles as scratch; ``rdx`` is the
  second scratch (never live across an argument setup).
* All *allocatable* registers are callee-saved: a function saves every
  allocatable register it touches in its frame.  This deviation from the
  real SysV split (where some are caller-saved) keeps call lowering simple
  while preserving the property AOCR exploits: register-resident values —
  heap pointers included — get spilled into readable stack frames.
* ``rsp`` must be 16-byte aligned at every ``call`` instruction; the CPU
  enforces this, so the BTRA parity padding of Section 5.1 is not optional.
"""

from __future__ import annotations

from repro.machine.isa import Reg

#: Argument registers, in order.
ARG_REGS = (Reg.RDI, Reg.RSI, Reg.RDX, Reg.RCX, Reg.R8, Reg.R9)

#: Registers the allocator may assign to virtual registers (all callee-saved).
ALLOCATABLE = (Reg.RBX, Reg.R10, Reg.R11, Reg.R12, Reg.R13, Reg.R14, Reg.R15)

#: Scratch registers used by the code generator between IR statements.
SCRATCH0 = Reg.RAX
SCRATCH1 = Reg.RDX

#: Return-value register.
RET_REG = Reg.RAX

#: Frame-pointer register, used only for offset-invariant addressing of
#: stack arguments (never as a general frame pointer).
FP_REG = Reg.RBP

MAX_REG_ARGS = len(ARG_REGS)


def split_args(n: int):
    """Return (register_arg_count, stack_arg_count) for an n-argument call."""
    reg_args = min(n, MAX_REG_ARGS)
    return reg_args, n - reg_args
