"""The linker: places lowered functions and globals, resolves layout.

Responsibilities:

* synthesize ``_start`` (call the entry function, then ``exit`` with its
  return value);
* lay out the text section in the plan's (possibly shuffled, booby-trap
  interleaved) function order, assigning every instruction an offset;
* lay out the data section in the plan's (possibly shuffled, padded)
  global order, including the GOT and the per-call-site BTRA arrays the
  code generator created;
* register symbols (functions, function-local labels, globals) and convert
  intra-function ``Label`` operands into symbolic immediates that the
  loader rebases under ASLR;
* record frame and call-site metadata (the ``.eh_frame`` analogue).

The output is position-independent; no absolute address exists until the
loader maps the binary (Section 5: "R2C is fully compatible with Position
Independent Code (PIC) for ASLR").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LinkError
from repro.machine.isa import Imm, Instruction, Label, Mem, Op, Reg
from repro.machine.memory import WORD_BYTES
from repro.toolchain.binary import Binary, CallSiteRecord, FrameRecord
from repro.toolchain.ir import GlobalVar, Module
from repro.toolchain.lower import LoweredFunction, collect_got, lower_module
from repro.toolchain.plan import ModulePlan, empty_plan

START_SYMBOL = "_start"


def _synthesize_start(entry_fn: str) -> LoweredFunction:
    instrs = [
        Instruction(Op.CALL, Imm(symbol=entry_fn)),
        Instruction(Op.EXIT, Reg.RAX),
    ]
    return LoweredFunction(
        name=START_SYMBOL,
        instrs=instrs,
        labels={},
        frame=None,
        post_offset=0,
        protected=False,
        has_stack_args=False,
    )


def _relabel(instr: Instruction, fn_name: str) -> Instruction:
    """Convert Label operands to function-local symbolic immediates."""
    def convert(operand):
        if isinstance(operand, Label):
            return Imm(symbol=f"{fn_name}::{operand.name}")
        return operand

    a, b = convert(instr.a), convert(instr.b)
    if a is instr.a and b is instr.b:
        return instr
    return Instruction(instr.op, a, b, size=instr.size, tag=instr.tag)


def link_module(
    module: Module,
    plan: Optional[ModulePlan] = None,
    *,
    entry: str = "main",
    name: Optional[str] = None,
) -> Binary:
    """Lower and link ``module`` under ``plan`` into a :class:`Binary`."""
    mplan = plan if plan is not None else empty_plan()
    if entry not in module.functions:
        raise LinkError(f"entry function {entry!r} not found")
    lowered = lower_module(module, mplan)
    lowered[START_SYMBOL] = _synthesize_start(entry)

    # ---- text layout -------------------------------------------------------
    if mplan.function_order is not None:
        order = list(mplan.function_order)
        missing = [n for n in lowered if n not in order and n != START_SYMBOL]
        order.extend(missing)
    else:
        order = (
            [n for n in module.functions]
            + [n for n, _ in mplan.booby_trap_functions]
            + [n for n, _ in mplan.trampolines]
        )
    if START_SYMBOL in order:
        raise LinkError("_start must not appear in the plan's function order")
    order = [START_SYMBOL] + order

    binary = Binary(name=name or module.name)
    cursor = 0
    for fn_name in order:
        fragment = lowered.get(fn_name)
        if fragment is None:
            raise LinkError(f"plan orders unknown function {fn_name!r}")
        entry_offset = cursor
        if fn_name in binary.symbols_text:
            raise LinkError(f"duplicate text symbol {fn_name!r}")
        binary.symbols_text[fn_name] = entry_offset

        instr_offsets: List[int] = []
        for instr in fragment.instrs:
            instr_offsets.append(cursor)
            binary.text.append((cursor, _relabel(instr, fn_name)))
            cursor += instr.size
        end_offset = cursor

        for label, index in fragment.labels.items():
            offset = instr_offsets[index] if index < len(instr_offsets) else end_offset
            binary.symbols_text[f"{fn_name}::{label}"] = offset

        binary.frame_records[fn_name] = FrameRecord(
            name=fn_name,
            entry_offset=entry_offset,
            end_offset=end_offset,
            frame_bytes=fragment.frame.frame_bytes if fragment.frame else 0,
            post_offset=fragment.post_offset,
            protected=fragment.protected,
            has_stack_args=fragment.has_stack_args,
            slot_offsets=dict(fragment.frame.offsets) if fragment.frame else {},
        )
        for site in fragment.callsites:
            ret_offset = binary.symbols_text[f"{fn_name}::{site.ret_label}"]
            binary.callsite_records[ret_offset] = CallSiteRecord(
                ret_offset=ret_offset,
                caller=fn_name,
                callee=site.callee,
                pre_words=site.pre_words,
                post_words=site.post_words,
                cleanup_words=site.cleanup_words,
                uses_btra=site.uses_btra,
                use_avx=site.use_avx,
            )
    binary.text_size = cursor

    # ---- data layout -------------------------------------------------------
    globals_by_name = {g.name: g for g in module.globals}
    if mplan.global_order is not None:
        data_order = [globals_by_name[n] for n in mplan.global_order]
        leftover = [g for g in module.globals if g.name not in set(mplan.global_order)]
        data_order.extend(leftover)
    else:
        data_order = list(module.globals)
    for fn_name in order:
        data_order.extend(lowered[fn_name].extra_globals)

    got_index = collect_got(module)
    if got_index:
        # Under code-pointer hiding, GOT entries point at trampolines.
        cph_map = {target: tramp for tramp, target in mplan.trampolines}
        got_init = [None] * len(got_index)
        for fname, slot in got_index.items():
            got_init[slot] = (cph_map.get(fname, fname), 0)
        data_order.append(GlobalVar("__got__", size_words=len(got_index), init=got_init))

    image = bytearray()
    for gv in data_order:
        if gv.name in binary.symbols_data:
            raise LinkError(f"duplicate data symbol {gv.name!r}")
        if gv.name in binary.symbols_text:
            raise LinkError(f"symbol {gv.name!r} defined in both text and data")
        offset = len(image)
        binary.symbols_data[gv.name] = offset
        for i in range(gv.size_words):
            value = gv.init[i] if i < len(gv.init) else 0
            if isinstance(value, tuple):
                symbol, addend = value
                binary.data_relocs.append((offset + i * WORD_BYTES, symbol, addend))
                value = 0
            image.extend((value & (2**64 - 1)).to_bytes(WORD_BYTES, "little"))
    binary.data_image = image
    binary.data_size = len(image)

    # ---- verification: every symbolic operand resolves ----------------------
    known = set(binary.symbols_text) | set(binary.symbols_data)
    for _, instr in binary.text:
        for operand in (instr.a, instr.b):
            symbol = getattr(operand, "symbol", None)
            if symbol is not None and symbol not in known and instr.op is not Op.CALLRT:
                raise LinkError(f"undefined symbol {symbol!r} in {instr!r}")
    for _, symbol, _ in binary.data_relocs:
        if symbol not in known:
            raise LinkError(f"undefined symbol {symbol!r} in data reloc")

    binary.metadata["plan"] = mplan
    binary.metadata["entry_function"] = entry
    binary.metadata["booby_trap_functions"] = [n for n, _ in mplan.booby_trap_functions]
    binary.metadata["function_order"] = order
    return binary
