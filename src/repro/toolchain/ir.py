"""The intermediate representation consumed by the code generator.

The IR is a small, register-based (non-SSA) language: functions contain
basic blocks of instructions over named virtual registers, plus named stack
locals (scalars or word arrays), module globals, and direct/indirect calls.
It is deliberately C-shaped: enough surface for the SPEC-like workloads
(call-heavy code, pointer chasing, stack buffers, function-pointer tables,
default parameters in globals) and for the attack programs (overflowable
locals, leak loops).

Operands are either virtual-register names (``str``) or integer constants
(``int``).  Labels are block names, local to a function.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ToolchainError

Operand = Union[str, int]

BIN_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr")
CMP_PREDS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Opcode -> human-readable operand signature, used by the validator.
OPCODES = {
    "const": "dst, value",
    "bin": "op, dst, a, b",
    "cmp": "pred, dst, a, b",
    "load": "dst, addr, offset",
    "store": "addr, offset, value",
    "local_load": "dst, local, index",
    "local_store": "local, index, value",
    "addr_local": "dst, local",
    "global_load": "dst, global, index",
    "global_store": "global, index, value",
    "addr_global": "dst, global",
    "func_addr": "dst, function",
    "call": "dst?, function, args",
    "icall": "dst?, target, args",
    "rtcall": "dst?, service, args",
    "br": "label",
    "cbr": "cond, then, else",
    "ret": "value?",
    "out": "value",
}

TERMINATORS = ("br", "cbr", "ret")


@dataclass
class IRInstr:
    """One IR instruction.  ``args`` is interpreted per ``OPCODES[op]``."""

    op: str
    args: Tuple = ()

    def __repr__(self) -> str:
        return f"({self.op} {' '.join(map(str, self.args))})"


@dataclass
class BasicBlock:
    label: str
    instrs: List[IRInstr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[IRInstr]:
        if self.instrs and self.instrs[-1].op in TERMINATORS:
            return self.instrs[-1]
        return None


@dataclass
class GlobalVar:
    """A module global: ``size_words`` 64-bit slots.

    ``init`` entries are ints or ``(symbol, addend)`` tuples resolved at
    link time — that is how function-pointer tables and "default parameter"
    globals (the AOCR target of Section 2.3) get code pointers into the
    data section.  ``padding`` globals are inserted by the global-shuffle
    pass and carry random bytes.
    """

    name: str
    size_words: int = 1
    init: Sequence[Union[int, Tuple[str, int]]] = ()
    is_padding: bool = False

    def __post_init__(self) -> None:
        if self.size_words <= 0:
            raise ToolchainError(f"global {self.name!r} has non-positive size")
        if len(self.init) > self.size_words:
            raise ToolchainError(f"global {self.name!r} has too many initializers")


@dataclass
class Function:
    """A function: parameters, named locals, and basic blocks.

    ``locals`` maps a local name to its size in words (1 = scalar).  The
    first block is the entry block.  ``protected`` marks the function as
    compiled by R2C; unprotected functions model foreign code (the
    Section 7.4 interoperability cases).
    """

    name: str
    params: List[str] = field(default_factory=list)
    locals: Dict[str, int] = field(default_factory=dict)
    blocks: List[BasicBlock] = field(default_factory=list)
    protected: bool = True

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ToolchainError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for b in self.blocks:
            if b.label == label:
                return b
        raise ToolchainError(f"no block {label!r} in {self.name!r}")

    def block_labels(self) -> List[str]:
        return [b.label for b in self.blocks]

    def has_stack_objects(self) -> bool:
        """True if the function allocates any named stack slot.

        The BTDP pass skips functions without stack allocations — "such
        functions are guaranteed to not write benign heap pointers to the
        stack either" (Section 5.2).
        """
        return bool(self.locals) or bool(self.params)


@dataclass
class Module:
    """A compilation unit: functions plus globals."""

    name: str = "module"
    functions: Dict[str, Function] = field(default_factory=dict)
    globals: List[GlobalVar] = field(default_factory=list)

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ToolchainError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, gv: GlobalVar) -> GlobalVar:
        if any(g.name == gv.name for g in self.globals):
            raise ToolchainError(f"duplicate global {gv.name!r}")
        self.globals.append(gv)
        return gv

    def global_var(self, name: str) -> GlobalVar:
        for g in self.globals:
            if g.name == name:
                return g
        raise ToolchainError(f"no global {name!r}")

    def fingerprint(self) -> str:
        """Stable content hash of the module (sha256 hex digest).

        Two modules with identical names, globals, functions, blocks and
        instructions — in the same order, since order is meaningful to the
        code generator — share a fingerprint.  This is the module half of
        the compile-cache key used by :mod:`repro.eval.engine`.

        The digest is memoized on the instance; fingerprint a module only
        once it is fully built (builders do not mutate after ``finish()``,
        and the compiler works on deep copies).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        hasher = hashlib.sha256()

        def feed(text: str) -> None:
            hasher.update(text.encode("utf-8"))
            hasher.update(b"\n")

        feed(f"module {self.name}")
        for gv in self.globals:
            feed(f"global {gv.name} {gv.size_words} {tuple(gv.init)!r} {gv.is_padding}")
        for fn in self.functions.values():
            feed(
                f"func {fn.name} params={fn.params!r} "
                f"locals={list(fn.locals.items())!r} protected={fn.protected}"
            )
            for block in fn.blocks:
                feed(f"block {block.label}")
                for instr in block.instrs:
                    feed(repr(instr))
        digest = hasher.hexdigest()
        self._fingerprint = digest
        return digest

    def validate(self) -> None:
        """Structural checks: block termination, label/symbol resolution."""
        global_names = {g.name for g in self.globals}
        for fn in self.functions.values():
            if not fn.blocks:
                raise ToolchainError(f"{fn.name}: no blocks")
            labels = set()
            for block in fn.blocks:
                if block.label in labels:
                    raise ToolchainError(f"{fn.name}: duplicate block {block.label!r}")
                labels.add(block.label)
            for block in fn.blocks:
                if block.terminator is None:
                    raise ToolchainError(
                        f"{fn.name}/{block.label}: block does not end in a terminator"
                    )
                for idx, instr in enumerate(block.instrs):
                    if instr.op in TERMINATORS and idx != len(block.instrs) - 1:
                        raise ToolchainError(
                            f"{fn.name}/{block.label}: terminator {instr.op} mid-block"
                        )
                    self._validate_instr(fn, block, instr, labels, global_names)

    def _validate_instr(
        self,
        fn: Function,
        block: BasicBlock,
        instr: IRInstr,
        labels: set,
        global_names: set,
    ) -> None:
        where = f"{fn.name}/{block.label}: {instr}"
        op = instr.op
        if op not in OPCODES:
            raise ToolchainError(f"{where}: unknown opcode")
        if op == "bin" and instr.args[0] not in BIN_OPS:
            raise ToolchainError(f"{where}: unknown binary op {instr.args[0]!r}")
        if op == "cmp" and instr.args[0] not in CMP_PREDS:
            raise ToolchainError(f"{where}: unknown predicate {instr.args[0]!r}")
        if op in ("local_load", "local_store", "addr_local"):
            local = instr.args[1] if op != "local_store" else instr.args[0]
            if local not in fn.locals and local not in fn.params:
                raise ToolchainError(f"{where}: unknown local {local!r}")
        if op in ("global_load", "global_store", "addr_global"):
            gname = instr.args[1] if op != "global_store" else instr.args[0]
            if gname not in global_names:
                raise ToolchainError(f"{where}: unknown global {gname!r}")
        if op in ("call", "func_addr"):
            fname = instr.args[1]
            if fname not in self.functions:
                raise ToolchainError(f"{where}: unknown function {fname!r}")
        if op == "br" and instr.args[0] not in labels:
            raise ToolchainError(f"{where}: unknown label {instr.args[0]!r}")
        if op == "cbr":
            for label in instr.args[1:3]:
                if label not in labels:
                    raise ToolchainError(f"{where}: unknown label {label!r}")
