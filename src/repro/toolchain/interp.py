"""Reference interpreter for the IR — the toolchain's golden model.

The compiler (any diversification configuration included) must be
observationally equivalent to this interpreter: same ``out`` stream, same
exit code.  The property-based tests in ``tests/test_equivalence.py``
generate random programs and random R2C seeds and compare both.

The interpreter gives locals, globals, and heap allocations synthetic
addresses in disjoint ranges so that pointer arithmetic in the IR behaves
like in the compiled program.  Programs must not ``out`` raw pointers
(addresses differ between interpreter and machine) and must initialize
stack locals before reading them — the interpreter raises on violations to
keep the equivalence property meaningful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ToolchainError
from repro.numeric import MASK64, SIGN_BIT, to_signed as _signed, truncated_div as _tdiv
from repro.toolchain.ir import Function, Module

_LOCAL_BASE = 0x1000_0000_0000
_GLOBAL_BASE = 0x2000_0000_0000
_HEAP_BASE = 0x3000_0000_0000
WORD = 8


class InterpError(ToolchainError):
    """Raised for IR-level runtime errors (uninitialized reads, bad ops)."""


class _Frame:
    __slots__ = ("fn", "vregs", "local_base", "local_offsets")

    def __init__(self, fn: Function, local_base: int):
        self.fn = fn
        self.vregs: Dict[str, int] = {}
        self.local_base = local_base
        self.local_offsets: Dict[str, int] = {}


class Interpreter:
    """Executes a module directly at the IR level."""

    def __init__(self, module: Module, *, step_budget: int = 10_000_000):
        module.validate()
        self.module = module
        self.step_budget = step_budget
        self.memory: Dict[int, int] = {}  # word-addressed
        self.output: List[int] = []
        self._local_bump = _LOCAL_BASE
        self._heap_bump = _HEAP_BASE
        self._global_addr: Dict[str, int] = {}
        self._steps = 0
        self._func_tokens: Dict[str, int] = {}
        self._token_funcs: Dict[int, str] = {}
        self._init_globals()

    def _init_globals(self) -> None:
        addr = _GLOBAL_BASE
        for gv in self.module.globals:
            self._global_addr[gv.name] = addr
            for i in range(gv.size_words):
                value = gv.init[i] if i < len(gv.init) else 0
                if isinstance(value, tuple):
                    symbol, addend = value
                    value = self._func_token(symbol) + addend
                self.memory[addr + i * WORD] = value & MASK64
            addr += gv.size_words * WORD

    def _func_token(self, name: str) -> int:
        """Synthetic 'address' of a function, for func_addr / icall."""
        if name not in self.module.functions:
            raise InterpError(f"func_addr of unknown function {name!r}")
        token = self._func_tokens.get(name)
        if token is None:
            token = 0x4000_0000_0000 + len(self._func_tokens) * 0x100
            self._func_tokens[name] = token
            self._token_funcs[token] = name
        return token

    # -- memory ------------------------------------------------------------

    def _read_mem(self, addr: int) -> int:
        try:
            return self.memory[addr]
        except KeyError:
            raise InterpError(f"read of uninitialized memory at {addr:#x}") from None

    def _write_mem(self, addr: int, value: int) -> None:
        self.memory[addr] = value & MASK64

    # -- runtime services -----------------------------------------------------

    def _rtcall(self, service: str, args: Sequence[int]) -> int:
        if service == "malloc":
            size = args[0] if args else 0
            if size <= 0:
                raise InterpError(f"malloc of size {size}")
            addr = self._heap_bump
            self._heap_bump += (size + 15) & ~15
            return addr
        if service == "free":
            return 0
        if service == "attack_hook":
            # The victim's vulnerability point: a no-op unless an attack
            # harness registers a real hook on the machine side.
            return 0
        raise InterpError(f"unknown runtime service {service!r}")

    # -- execution ----------------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence[int] = ()) -> Tuple[int, List[int]]:
        result = self._call(entry, [a & MASK64 for a in args])
        return result, self.output

    def _call(self, fname: str, args: Sequence[int]) -> int:
        fn = self.module.functions.get(fname)
        if fn is None:
            raise InterpError(f"call to unknown function {fname!r}")
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fname}: expected {len(fn.params)} args, got {len(args)}"
            )
        frame = _Frame(fn, self._local_bump)
        # Reserve address space for params + locals (params are slot 0..).
        local_offsets: Dict[str, int] = {}
        offset = 0
        for name in fn.params:
            local_offsets[name] = offset
            offset += WORD
        for name, words in fn.locals.items():
            local_offsets[name] = offset
            offset += words * WORD
        self._local_bump += max(offset, WORD)
        frame.local_offsets = local_offsets
        for name, value in zip(fn.params, args):
            self._write_mem(frame.local_base + local_offsets[name], value)

        block = fn.entry
        index = 0
        while True:
            self._steps += 1
            if self._steps > self.step_budget:
                raise InterpError("interpreter step budget exceeded")
            instr = block.instrs[index]
            op = instr.op
            a = instr.args

            if op == "const":
                frame.vregs[a[0]] = a[1] & MASK64
            elif op == "bin":
                frame.vregs[a[1]] = self._binop(a[0], self._val(frame, a[2]), self._val(frame, a[3]))
            elif op == "cmp":
                frame.vregs[a[1]] = self._cmp(a[0], self._val(frame, a[2]), self._val(frame, a[3]))
            elif op == "load":
                frame.vregs[a[0]] = self._read_mem((self._val(frame, a[1]) + a[2]) & MASK64)
            elif op == "store":
                self._write_mem((self._val(frame, a[0]) + a[1]) & MASK64, self._val(frame, a[2]))
            elif op == "local_load":
                base = frame.local_base + frame.local_offsets[a[1]]
                idx = self._val(frame, a[2])
                frame.vregs[a[0]] = self._read_mem(base + _signed(idx) * WORD)
            elif op == "local_store":
                base = frame.local_base + frame.local_offsets[a[0]]
                idx = self._val(frame, a[1])
                self._write_mem(base + _signed(idx) * WORD, self._val(frame, a[2]))
            elif op == "addr_local":
                frame.vregs[a[0]] = frame.local_base + frame.local_offsets[a[1]]
            elif op == "global_load":
                base = self._global_addr[a[1]]
                idx = self._val(frame, a[2])
                frame.vregs[a[0]] = self._read_mem(base + _signed(idx) * WORD)
            elif op == "global_store":
                base = self._global_addr[a[0]]
                idx = self._val(frame, a[1])
                self._write_mem(base + _signed(idx) * WORD, self._val(frame, a[2]))
            elif op == "addr_global":
                frame.vregs[a[0]] = self._global_addr[a[1]]
            elif op == "func_addr":
                frame.vregs[a[0]] = self._func_token(a[1])
            elif op == "call":
                result = self._call(a[1], [self._val(frame, arg) for arg in a[2]])
                if a[0] is not None:
                    frame.vregs[a[0]] = result
            elif op == "icall":
                target = self._val(frame, a[1])
                fname2 = self._token_funcs.get(target)
                if fname2 is None:
                    raise InterpError(f"indirect call to non-function value {target:#x}")
                result = self._call(fname2, [self._val(frame, arg) for arg in a[2]])
                if a[0] is not None:
                    frame.vregs[a[0]] = result
            elif op == "rtcall":
                result = self._rtcall(a[1], [self._val(frame, arg) for arg in a[2]])
                if a[0] is not None:
                    frame.vregs[a[0]] = result
            elif op == "br":
                block = fn.block(a[0])
                index = 0
                continue
            elif op == "cbr":
                taken = a[1] if self._val(frame, a[0]) != 0 else a[2]
                block = fn.block(taken)
                index = 0
                continue
            elif op == "ret":
                return 0 if a[0] is None else self._val(frame, a[0])
            elif op == "out":
                self.output.append(self._val(frame, a[0]))
            else:  # pragma: no cover - validate() rejects unknown ops
                raise InterpError(f"unknown opcode {op!r}")
            index += 1

    def _val(self, frame: _Frame, operand) -> int:
        if isinstance(operand, int):
            return operand & MASK64
        try:
            return frame.vregs[operand]
        except KeyError:
            raise InterpError(
                f"{frame.fn.name}: read of unset vreg {operand!r}"
            ) from None

    @staticmethod
    def _binop(op: str, x: int, y: int) -> int:
        if op == "add":
            return (x + y) & MASK64
        if op == "sub":
            return (x - y) & MASK64
        if op == "mul":
            return (_signed(x) * _signed(y)) & MASK64
        if op == "div":
            if _signed(y) == 0:
                raise InterpError("division by zero")
            return _tdiv(_signed(x), _signed(y)) & MASK64
        if op == "mod":
            sy = _signed(y)
            if sy == 0:
                raise InterpError("modulo by zero")
            sx = _signed(x)
            return (sx - _tdiv(sx, sy) * sy) & MASK64
        if op == "and":
            return x & y
        if op == "or":
            return x | y
        if op == "xor":
            return x ^ y
        if op == "shl":
            return (x << (y & 63)) & MASK64
        if op == "shr":
            return (x >> (y & 63)) & MASK64
        raise InterpError(f"unknown binop {op!r}")

    @staticmethod
    def _cmp(pred: str, x: int, y: int) -> int:
        sx, sy = _signed(x), _signed(y)
        if pred == "eq":
            return 1 if sx == sy else 0
        if pred == "ne":
            return 1 if sx != sy else 0
        if pred == "lt":
            return 1 if sx < sy else 0
        if pred == "le":
            return 1 if sx <= sy else 0
        if pred == "gt":
            return 1 if sx > sy else 0
        if pred == "ge":
            return 1 if sx >= sy else 0
        raise InterpError(f"unknown predicate {pred!r}")


def interpret_module(
    module: Module, entry: str = "main", args: Sequence[int] = (), *, step_budget: int = 10_000_000
) -> Tuple[int, List[int]]:
    """Run ``module`` on the reference interpreter; return (exit, output)."""
    return Interpreter(module, step_budget=step_budget).run(entry, args)
