"""Stack-frame layout, with optional slot randomization.

A frame holds, in (possibly shuffled) slot order: callee-saved register
save slots, parameter homes, named locals, spill slots, BTDP slots, the
OIA frame-pointer save slot, and a scratch word.  Shuffling the order is
the *stack-slot randomization* of Section 4.2: it destroys the attacker's
a-priori knowledge of the relative position of stack objects, and mixes
BTDP slots in with benign pointers.

The frame size obeys the alignment rule of Section 5.1: at every internal
``call``, rsp must be 16-byte aligned.  On entry rsp ≡ 8 (mod 16) (the
call pushed the return address onto an aligned stack); the callee then
subtracts ``8 * post_offset`` (its BTRA post-offset) and the frame size,
so the frame word count is padded until ``frame_words + post_offset + 1``
is even.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ToolchainError
from repro.machine.isa import WORD
from repro.rng import DiversityRng


@dataclass
class FrameLayout:
    """Resolved frame: byte offsets (from post-setup rsp) per slot name."""

    offsets: Dict[str, int]
    frame_bytes: int
    slot_order: List[Tuple[str, int]]  # (name, size_words) in memory order

    def offset(self, name: str) -> int:
        try:
            return self.offsets[name]
        except KeyError:
            raise ToolchainError(f"no frame slot {name!r}") from None


def build_frame(
    units: Sequence[Tuple[str, int]],
    *,
    post_offset: int = 0,
    shuffle_rng: Optional[DiversityRng] = None,
) -> FrameLayout:
    """Lay out ``units`` (name, size_words) into a frame.

    With ``shuffle_rng`` the unit order is randomized (stack-slot
    randomization); otherwise units appear in declaration order.
    """
    order = list(units)
    seen = set()
    for name, words in order:
        if words <= 0:
            raise ToolchainError(f"slot {name!r} has non-positive size")
        if name in seen:
            raise ToolchainError(f"duplicate slot {name!r}")
        seen.add(name)
    if shuffle_rng is not None:
        shuffle_rng.shuffle(order)

    offsets: Dict[str, int] = {}
    cursor = 0
    for name, words in order:
        offsets[name] = cursor
        cursor += words * WORD

    frame_words = cursor // WORD
    # Pad so that rsp is 16-byte aligned after `sub rsp, 8*post` + `sub rsp, frame`.
    if (frame_words + post_offset + 1) % 2 != 0:
        frame_words += 1
    return FrameLayout(offsets=offsets, frame_bytes=frame_words * WORD, slot_order=order)
