"""Diversification plan: the contract between R2C passes and the codegen.

The real R2C is implemented as LLVM backend passes that cooperate with call
lowering and frame lowering (Section 5).  We mirror that split: the passes
in :mod:`repro.core.passes` *decide* (how many BTRAs, which booby traps,
how many prolog traps, whether to shuffle slots), and record the decisions
in these plan structures; :mod:`repro.toolchain.lower` *executes* them
while emitting machine code.

A plan with everything zeroed/disabled (the default) produces the baseline
binary the paper compares against ("we compiled the baseline with the same
compiler version and flags but with R2C disabled", Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rng import DiversityRng

#: A booby-trap target: (symbol, byte offset into the trap body).
BtraTarget = Tuple[str, int]


@dataclass
class CallSitePlan:
    """Per-call-site BTRA decisions (drawn at compile time, Section 5.1)."""

    pre_btras: List[BtraTarget] = field(default_factory=list)
    post_btras: List[BtraTarget] = field(default_factory=list)
    use_avx: bool = False
    nops_before: int = 0  # NOP insertion at the call site (Section 4.3)
    #: Ablation: skip the pre-written return address, re-opening the
    #: pre/post-call race window (requires post_btras to be empty).
    racy: bool = False
    #: When set, verify this pre-BTRA index after the call returns and
    #: detonate on mismatch (the Section 7.3 consistency check).
    check_index: Optional[int] = None

    @property
    def pre_count(self) -> int:
        return len(self.pre_btras)

    @property
    def post_count(self) -> int:
        return len(self.post_btras)

    @property
    def enabled(self) -> bool:
        return bool(self.pre_btras or self.post_btras)


@dataclass
class FunctionPlan:
    """Per-function diversification decisions."""

    #: Callee-side BTRA slots protected below the return address; the callee
    #: subtracts 8*post_offset from rsp on entry and reverts it before ret.
    post_offset: int = 0
    #: Trap instructions placed in the prolog (jumped over by a leading jmp).
    prolog_traps: int = 0
    #: BTDPs written into this function's stack frame.
    btdp_count: int = 0
    #: Shuffle the order of stack slots (params, locals, spills, BTDPs).
    shuffle_slots: bool = False
    #: Shuffle the register-allocator pool order.
    shuffle_regs: bool = False
    #: Use offset-invariant addressing for this function's stack arguments.
    #: Set when BTRAs are active (the pre-offset makes rsp-relative stack
    #: argument access impossible, Section 5.1.1) or when measuring OIA alone.
    offset_invariant_args: bool = False
    #: Compile-time chosen indices into the BTDP array, one per BTDP write.
    btdp_indices: List[int] = field(default_factory=list)
    #: Per-call-site plans, indexed by lowering order: the ``call`` and
    #: ``icall`` IR instructions of the function, in block order
    #: (``rtcall`` sites are not diversified and do not count).
    call_sites: List[CallSitePlan] = field(default_factory=list)
    #: RNG streams for decisions the codegen must draw itself (slot order,
    #: register pool order).
    slot_rng: Optional[DiversityRng] = None
    reg_rng: Optional[DiversityRng] = None

    def call_site(self, index: int) -> CallSitePlan:
        """Plan for the ``index``-th call site; default (disabled) if absent."""
        if index < len(self.call_sites):
            return self.call_sites[index]
        return CallSitePlan()


@dataclass
class ModulePlan:
    """Whole-module diversification decisions."""

    #: Text-section order: function names, booby-trap functions interleaved.
    function_order: Optional[List[str]] = None
    #: Data-section order: global names (padding globals included).
    global_order: Optional[List[str]] = None
    #: Per-function plans; functions without an entry get the default plan.
    functions: Dict[str, FunctionPlan] = field(default_factory=dict)
    #: Name of the data-section symbol the BTDP loads go through:
    #: hardened mode -> a single pointer to the heap-allocated array;
    #: naive mode -> the array itself (the Figure 5 comparison).
    btdp_source_symbol: Optional[str] = None
    #: True when btdp_source_symbol holds a *pointer* to the heap array
    #: (hardened) rather than the array data (naive).
    btdp_source_is_pointer: bool = True
    #: Number of entries in the BTDP array.
    btdp_array_len: int = 0
    #: Vector width (in 64-bit words) for the batched BTRA setup:
    #: 4 = AVX2 (ymm), 8 = AVX-512 (zmm).
    vector_words: int = 4
    #: Booby-trap functions injected into the module as (name, trap_count);
    #: their bodies are all-TRAP, so any control transfer into them detonates.
    booby_trap_functions: List[Tuple[str, int]] = field(default_factory=list)
    #: Code-pointer-hiding trampolines as (trampoline_name, target): every
    #: observable function pointer (GOT entries, data-section initializers)
    #: is redirected through a one-jump stub, so leaked function pointers
    #: reveal trampoline addresses, not function addresses (Section 2.2).
    trampolines: List[Tuple[str, str]] = field(default_factory=list)
    #: Offset-invariant addressing is in force module-wide: protected
    #: functions read stack arguments through the caller-parked rbp, and
    #: callers park rbp at indirect call sites with stack arguments.
    oia_enabled: bool = False
    #: Emit BTRAs even at call sites whose callee is unprotected
    #: (the paper's worst-case measurement configuration, Section 6.2).
    btras_for_unprotected_calls: bool = False

    def function_plan(self, name: str) -> FunctionPlan:
        plan = self.functions.get(name)
        return plan if plan is not None else FunctionPlan()


def empty_plan() -> ModulePlan:
    """The baseline plan: no diversification at all."""
    return ModulePlan()
