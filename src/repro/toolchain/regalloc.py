"""Linear-scan register allocation over IR virtual registers.

The allocator assigns each virtual register either an allocatable machine
register or a spill slot in the frame.  It is the hook for two R2C
diversifications:

* **register-allocation randomization** (Section 4.3): the pool order is
  shuffled per function, so identical source code uses different registers
  in different builds — and therefore produces different callee-saved
  spill layouts on the stack;
* **spilled heap pointers**: values that do not fit in the pool land in
  readable stack slots, which is exactly the signal AOCR's statistical
  profiling feeds on (Section 2.3) and BTDPs camouflage.

Liveness is computed as linear first-use/last-use intervals, extended over
loop back edges so a value live around a loop is never clobbered inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.machine.isa import Reg
from repro.rng import DiversityRng
from repro.toolchain.callconv import ALLOCATABLE
from repro.toolchain.ir import Function, IRInstr

Location = Union[Tuple[str, Reg], Tuple[str, int]]  # ("reg", Reg) | ("spill", n)


def _defs_uses(instr: IRInstr) -> Tuple[Optional[str], List[str]]:
    """Return (defined vreg, used vregs) for one IR instruction."""
    op = instr.op
    a = instr.args

    def v(x) -> Optional[str]:
        return x if isinstance(x, str) else None

    if op == "const":
        return a[0], []
    if op in ("bin", "cmp"):
        return a[1], [x for x in (v(a[2]), v(a[3])) if x]
    if op == "load":
        return a[0], [x for x in (v(a[1]),) if x]
    if op == "store":
        return None, [x for x in (v(a[0]), v(a[2])) if x]
    if op == "local_load":
        return a[0], [x for x in (v(a[2]),) if x]
    if op == "local_store":
        return None, [x for x in (v(a[1]), v(a[2])) if x]
    if op in ("addr_local", "addr_global", "func_addr"):
        return a[0], []
    if op == "global_load":
        return a[0], [x for x in (v(a[2]),) if x]
    if op == "global_store":
        return None, [x for x in (v(a[1]), v(a[2])) if x]
    if op == "call":
        return a[0], [x for x in map(v, a[2]) if x]
    if op == "icall":
        uses = [x for x in (v(a[1]),) if x] + [x for x in map(v, a[2]) if x]
        return a[0], uses
    if op == "rtcall":
        return a[0], [x for x in map(v, a[2]) if x]
    if op == "br":
        return None, []
    if op == "cbr":
        return None, [x for x in (v(a[0]),) if x]
    if op == "ret":
        return None, [x for x in (v(a[0]),) if x] if a[0] is not None else []
    if op == "out":
        return None, [x for x in (v(a[0]),) if x]
    raise ValueError(f"unknown opcode {op!r}")


@dataclass
class Interval:
    vreg: str
    start: int
    end: int


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    locations: Dict[str, Location]
    used_registers: List[Reg]
    spill_count: int

    def location(self, vreg: str) -> Location:
        return self.locations[vreg]


def compute_intervals(fn: Function) -> Tuple[List[Interval], int]:
    """Linear live intervals with back-edge extension.

    Returns (intervals, instruction_count).
    """
    block_start: Dict[str, int] = {}
    linear: List[IRInstr] = []
    for block in fn.blocks:
        block_start[block.label] = len(linear)
        linear.extend(block.instrs)

    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    for idx, instr in enumerate(linear):
        defined, used = _defs_uses(instr)
        for name in used + ([defined] if defined else []):
            if name not in first:
                first[name] = idx
            last[name] = idx

    # Back edges: a branch at index j to a block starting at i <= j means
    # everything live anywhere in [i, j] must stay live through j.
    back_edges: List[Tuple[int, int]] = []
    for idx, instr in enumerate(linear):
        targets: Sequence[str] = ()
        if instr.op == "br":
            targets = (instr.args[0],)
        elif instr.op == "cbr":
            targets = instr.args[1:3]
        for label in targets:
            target = block_start[label]
            if target <= idx:
                back_edges.append((target, idx))

    changed = True
    while changed:
        changed = False
        for target, branch in back_edges:
            for name in first:
                if first[name] <= branch and last[name] >= target and last[name] < branch:
                    last[name] = branch
                    changed = True

    intervals = [Interval(name, first[name], last[name]) for name in first]
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.vreg))
    return intervals, len(linear)


def allocate(
    fn: Function,
    *,
    rng: Optional[DiversityRng] = None,
    pool: Sequence[Reg] = ALLOCATABLE,
) -> Allocation:
    """Assign registers/spill slots to every vreg of ``fn``.

    ``rng`` (when given) shuffles the register pool — the
    register-allocation randomization diversification.
    """
    intervals, _ = compute_intervals(fn)
    order = list(pool)
    if rng is not None:
        rng.shuffle(order)

    free = list(order)
    active: List[Tuple[Interval, Reg]] = []  # sorted by interval end
    locations: Dict[str, Location] = {}
    used_registers: List[Reg] = []
    spill_count = 0

    for interval in intervals:
        # Expire intervals that ended strictly before this one starts.
        still_active = []
        for act, reg in active:
            if act.end < interval.start:
                free.append(reg)
            else:
                still_active.append((act, reg))
        active = still_active

        if free:
            reg = free.pop(0)
            locations[interval.vreg] = ("reg", reg)
            if reg not in used_registers:
                used_registers.append(reg)
            active.append((interval, reg))
            active.sort(key=lambda pair: pair[0].end)
        else:
            # Spill whichever of {current, furthest-ending active} ends last.
            victim, victim_reg = active[-1]
            if victim.end > interval.end:
                active.pop()
                locations[victim.vreg] = ("spill", spill_count)
                spill_count += 1
                locations[interval.vreg] = ("reg", victim_reg)
                active.append((interval, victim_reg))
                active.sort(key=lambda pair: pair[0].end)
            else:
                locations[interval.vreg] = ("spill", spill_count)
                spill_count += 1

    return Allocation(locations=locations, used_registers=used_registers, spill_count=spill_count)
