"""Disassembly/objdump-style rendering of linked binaries — and back.

Renders instructions with their text offsets, section maps, and
per-function listings, useful for inspecting what the diversification
passes actually emitted (``print(disassemble_function(binary, "main"))``).

The rendering is *lossless*: :func:`parse_instruction` /
:func:`parse_listing` reconstruct the instruction stream from a listing,
and the round-trip property (``tests/test_disasm.py``) holds for every
opcode in the ISA.  The binary invariant checker leans on the same
operand model, so faithful decoding is load-bearing, not cosmetic.

Grammar notes (the ambiguities the parser depends on being closed):

* immediates are ``$<value>`` or ``$<symbol>`` or ``$<symbol><±value>``
  — the signed form is used even for negative addends, so ``$f-0x8``
  never renders as the unparseable ``$f+-0x8``;
* memory operands are ``[term+term...±offset]``; a bare register name
  inside brackets is a base register, anything else is a symbol (symbols
  shadowing register names would be ambiguous — the toolchain never
  emits them, and :func:`parse_operand` resolves in favor of registers);
* a bare token outside brackets is a register if it names one, else a
  pre-link :class:`Label`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.machine.isa import Imm, Instruction, Label, Mem, Op, Operand, Reg
from repro.toolchain.binary import Binary

_REG_NAMES = {reg.name.lower(): reg for reg in Reg}
_OPS_BY_NAME = {op.value: op for op in Op}

_TERM = re.compile(r"([+-]?)([^+-]+)")
_SIGNED_HEX = re.compile(r"([+-])0x([0-9a-fA-F]+)$")
_LINE = re.compile(
    r"^\s*(?P<offset>0x[0-9a-fA-F]+):\s+(?P<op>\S+)\s*(?P<operands>.*?)\s*$"
)


def format_operand(operand) -> str:
    if operand is None:
        return ""
    if isinstance(operand, Reg):
        return operand.name.lower()
    if isinstance(operand, Imm):
        if operand.symbol is not None:
            # The sign always separates symbol from addend ($f+0x8 / $f-0x8);
            # "+{value:#x}" would render negative addends as "$f+-0x8".
            return f"${operand.symbol}{operand.value:+#x}" if operand.value else f"${operand.symbol}"
        return f"${operand.value:#x}"
    if isinstance(operand, Mem):
        parts = []
        if operand.symbol:
            parts.append(operand.symbol)
        if operand.base is not None:
            parts.append(operand.base.name.lower())
        if operand.index is not None:
            parts.append(f"{operand.index.name.lower()}*{operand.scale}")
        inner = "+".join(parts) if parts else ""
        if operand.offset:
            inner = f"{inner}{operand.offset:+#x}" if inner else f"{operand.offset:#x}"
        return f"[{inner or '0x0'}]"
    if isinstance(operand, Label):
        return operand.name
    return repr(operand)


def format_instruction(offset: int, instr: Instruction) -> str:
    operands = ", ".join(
        text for text in (format_operand(instr.a), format_operand(instr.b)) if text
    )
    line = f"  {offset:#08x}:  {instr.op.value:<10s} {operands}"
    if instr.tag:
        line = f"{line:<58s}; {instr.tag}"
    return line


def render_instruction(instr: Instruction) -> str:
    """Offset- and tag-free rendering: the instruction's own identity.

    What the entropy auditor hashes when comparing gadgets across
    diversified variants (provenance tags are defender-side metadata an
    attacker never sees).
    """
    operands = ", ".join(
        text for text in (format_operand(instr.a), format_operand(instr.b)) if text
    )
    return f"{instr.op.value} {operands}".rstrip()


# ---------------------------------------------------------------------------
# parsing (the inverse direction)
# ---------------------------------------------------------------------------


def parse_operand(text: str) -> Optional[Operand]:
    """Parse one rendered operand; inverse of :func:`format_operand`."""
    text = text.strip()
    if not text:
        return None
    if text.startswith("$"):
        body = text[1:]
        if body.startswith(("0x", "-0x")) or body.lstrip("-").isdigit():
            return Imm(int(body, 0))
        match = _SIGNED_HEX.search(body)
        if match:
            sign, digits = match.groups()
            value = int(digits, 16) * (-1 if sign == "-" else 1)
            return Imm(value, symbol=body[: match.start()])
        return Imm(0, symbol=body)
    if text.startswith("[") and text.endswith("]"):
        return _parse_mem(text[1:-1])
    reg = _REG_NAMES.get(text)
    if reg is not None:
        return reg
    return Label(text)


def _parse_mem(inner: str) -> Mem:
    base: Optional[Reg] = None
    index: Optional[Reg] = None
    scale = 1
    offset = 0
    symbol: Optional[str] = None
    for match in _TERM.finditer(inner):
        sign, term = match.groups()
        if term.startswith("0x") or term.isdigit():
            offset = int(term, 0) * (-1 if sign == "-" else 1)
        elif "*" in term:
            reg_name, _, scale_text = term.partition("*")
            index = _REG_NAMES[reg_name]
            scale = int(scale_text, 0)
        elif term in _REG_NAMES:
            base = _REG_NAMES[term]
        else:
            symbol = term
    return Mem(base=base, offset=offset, index=index, scale=scale, symbol=symbol)


def parse_instruction(line: str) -> Tuple[int, Instruction]:
    """Parse one listing line back to ``(offset, Instruction)``.

    The encoded size is recomputed from the operands (a listing line does
    not carry it); :func:`parse_listing` recovers overridden sizes — e.g.
    multi-byte NOP padding — from consecutive offsets.
    """
    text, tag = line, None
    if ";" in line:
        text, _, tag_text = line.partition(";")
        tag = tag_text.strip() or None
    match = _LINE.match(text)
    if match is None:
        raise ValueError(f"unparseable listing line: {line!r}")
    op = _OPS_BY_NAME.get(match.group("op"))
    if op is None:
        raise ValueError(f"unknown mnemonic in listing line: {line!r}")
    operand_text = match.group("operands")
    operands = [parse_operand(part) for part in operand_text.split(",")] if operand_text else []
    a = operands[0] if len(operands) > 0 else None
    b = operands[1] if len(operands) > 1 else None
    return int(match.group("offset"), 16), Instruction(op, a, b, tag=tag)


def parse_listing(listing: str) -> List[Tuple[int, Instruction]]:
    """Parse a multi-line listing (header lines are skipped).

    Where consecutive offsets imply a different encoded size than the
    default — NOP-insertion emits multi-byte NOPs — the parsed
    instruction's ``size`` is corrected from the offset delta.
    """
    items: List[Tuple[int, Instruction]] = []
    for line in listing.splitlines():
        stripped = line.strip()
        if not stripped or not stripped.startswith("0x"):
            continue
        items.append(parse_instruction(line))
    for position in range(len(items) - 1):
        offset, instr = items[position]
        delta = items[position + 1][0] - offset
        if delta > 0 and delta != instr.size:
            instr.size = delta
    return items


def disassemble_function(binary: Binary, name: str) -> str:
    """objdump-style listing of one function."""
    start, end = binary.function_range(name)
    lines = [f"<{name}>:  ({end - start} bytes)"]
    for offset, instr in binary.text:
        if start <= offset < end:
            lines.append(format_instruction(offset, instr))
    return "\n".join(lines)


def disassemble_binary(binary: Binary, *, functions: Optional[List[str]] = None) -> str:
    """Full (or filtered) listing, in text-layout order."""
    order = functions if functions is not None else sorted(
        binary.frame_records, key=lambda n: binary.frame_records[n].entry_offset
    )
    return "\n\n".join(disassemble_function(binary, name) for name in order)


def section_map(binary: Binary) -> str:
    """Summarize the layout: functions with offsets/sizes, then globals."""
    lines = [f"text: {binary.text_size} bytes, {len(binary.frame_records)} functions"]
    for name, record in sorted(
        binary.frame_records.items(), key=lambda kv: kv[1].entry_offset
    ):
        marker = "" if record.protected else "  [unprotected]"
        lines.append(
            f"  {record.entry_offset:#08x}  {record.end_offset - record.entry_offset:5d}B"
            f"  {name}{marker}"
        )
    lines.append(f"data: {binary.data_size} bytes, {len(binary.symbols_data)} symbols")
    for name, offset in sorted(binary.symbols_data.items(), key=lambda kv: kv[1]):
        lines.append(f"  {offset:#08x}  {name}")
    return "\n".join(lines)
