"""Disassembly/objdump-style rendering of linked binaries.

Purely a developer tool: renders instructions with their text offsets,
section maps, and per-function listings.  Useful for inspecting what the
diversification passes actually emitted (``print(disassemble_function(
binary, "main"))``) and used by the examples.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.isa import Imm, Instruction, Label, Mem, Reg
from repro.toolchain.binary import Binary


def format_operand(operand) -> str:
    if operand is None:
        return ""
    if isinstance(operand, Reg):
        return operand.name.lower()
    if isinstance(operand, Imm):
        if operand.symbol is not None:
            return f"${operand.symbol}+{operand.value:#x}" if operand.value else f"${operand.symbol}"
        return f"${operand.value:#x}"
    if isinstance(operand, Mem):
        parts = []
        if operand.symbol:
            parts.append(operand.symbol)
        if operand.base is not None:
            parts.append(operand.base.name.lower())
        if operand.index is not None:
            parts.append(f"{operand.index.name.lower()}*{operand.scale}")
        inner = "+".join(parts) if parts else ""
        if operand.offset:
            inner = f"{inner}{operand.offset:+#x}" if inner else f"{operand.offset:#x}"
        return f"[{inner or '0x0'}]"
    if isinstance(operand, Label):
        return operand.name
    return repr(operand)


def format_instruction(offset: int, instr: Instruction) -> str:
    operands = ", ".join(
        text for text in (format_operand(instr.a), format_operand(instr.b)) if text
    )
    line = f"  {offset:#08x}:  {instr.op.value:<10s} {operands}"
    if instr.tag:
        line = f"{line:<58s}; {instr.tag}"
    return line


def disassemble_function(binary: Binary, name: str) -> str:
    """objdump-style listing of one function."""
    start, end = binary.function_range(name)
    lines = [f"<{name}>:  ({end - start} bytes)"]
    for offset, instr in binary.text:
        if start <= offset < end:
            lines.append(format_instruction(offset, instr))
    return "\n".join(lines)


def disassemble_binary(binary: Binary, *, functions: Optional[List[str]] = None) -> str:
    """Full (or filtered) listing, in text-layout order."""
    order = functions if functions is not None else sorted(
        binary.frame_records, key=lambda n: binary.frame_records[n].entry_offset
    )
    return "\n\n".join(disassemble_function(binary, name) for name in order)


def section_map(binary: Binary) -> str:
    """Summarize the layout: functions with offsets/sizes, then globals."""
    lines = [f"text: {binary.text_size} bytes, {len(binary.frame_records)} functions"]
    for name, record in sorted(
        binary.frame_records.items(), key=lambda kv: kv[1].entry_offset
    ):
        marker = "" if record.protected else "  [unprotected]"
        lines.append(
            f"  {record.entry_offset:#08x}  {record.end_offset - record.entry_offset:5d}B"
            f"  {name}{marker}"
        )
    lines.append(f"data: {binary.data_size} bytes, {len(binary.symbols_data)} symbols")
    for name, offset in sorted(binary.symbols_data.items(), key=lambda kv: kv[1]):
        lines.append(f"  {offset:#08x}  {name}")
    return "\n".join(lines)
