"""Code generation: IR functions -> machine instructions.

The lowering implements the calling convention of
:mod:`repro.toolchain.callconv` and executes the diversification decisions
recorded in a :class:`~repro.toolchain.plan.ModulePlan`:

* **BTRA call sites** (Section 5.1): the caller pushes the chosen pre
  booby-trapped return addresses, the (compile-time known) return address,
  and the post BTRAs, then repositions ``rsp`` so the ``call`` instruction
  overwrites the return-address slot in place; the callee protects its
  post-offset with a leading ``sub rsp``.  Both the push-based and the
  AVX2 batched setup sequences are implemented (Section 5.1.2).
* **Offset-invariant addressing** (Section 5.1.1): call sites passing
  stack arguments park ``rbp`` just below the stack arguments so the
  callee can reach them across the varying pre-offset.
* **Prolog traps, NOP insertion, BTDP writes, slot and regalloc
  shuffling** (Sections 4.2, 4.3, 5.2).

With an empty plan this module is a plain, deterministic code generator —
the paper's baseline compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.findings import fail
from repro.errors import ToolchainError
from repro.machine.isa import Imm, Instruction, Label, Mem, Op, Reg, WORD
from repro.toolchain.callconv import (
    ARG_REGS,
    FP_REG,
    MAX_REG_ARGS,
    RET_REG,
    SCRATCH0,
    SCRATCH1,
)
from repro.toolchain.frame import FrameLayout, build_frame
from repro.toolchain.ir import Function, GlobalVar, IRInstr, Module
from repro.toolchain.plan import CallSitePlan, FunctionPlan, ModulePlan
from repro.toolchain.regalloc import Allocation, allocate

VECTOR_WORDS = 4


@dataclass
class LoweredCallSite:
    """Codegen-side record of one lowered call site."""

    ret_label: str
    callee: Optional[str]
    pre_words: int
    post_words: int
    cleanup_words: int
    uses_btra: bool
    use_avx: bool


@dataclass
class LoweredFunction:
    """Machine code for one function, pre-linking."""

    name: str
    instrs: List[Instruction]
    labels: Dict[str, int]  # label -> instruction index (may equal len(instrs))
    frame: Optional[FrameLayout]
    post_offset: int
    protected: bool
    has_stack_args: bool
    callsites: List[LoweredCallSite] = field(default_factory=list)
    extra_globals: List[GlobalVar] = field(default_factory=list)


def _spill_slot(index: int) -> str:
    return f"__spill{index}"


def _save_slot(reg: Reg) -> str:
    return f"__save_{reg.name.lower()}"


def _btdp_slot(index: int) -> str:
    return f"__btdp{index}"


_TMP_SLOT = "__tmp"
_OIA_SAVE_SLOT = "__oia_rbp_save"


class _FunctionLowerer:
    """Lowers one IR function under a module plan."""

    def __init__(
        self,
        module: Module,
        fn: Function,
        mplan: ModulePlan,
        fplan: FunctionPlan,
        got_index: Dict[str, int],
    ):
        self.module = module
        self.fn = fn
        self.mplan = mplan
        self.fplan = fplan
        self.got_index = got_index
        self.instrs: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.push_depth = 0  # words pushed within the current call lowering
        self.callsite_counter = 0
        self.callsites: List[LoweredCallSite] = []
        self.extra_globals: List[GlobalVar] = []
        self.allocation: Allocation = allocate(
            fn, rng=fplan.reg_rng if fplan.shuffle_regs else None
        )
        self.frame = self._build_frame()

    # -- frame ---------------------------------------------------------------

    def _needs_oia_save(self) -> bool:
        """Does any call site in this function park rbp for stack args?"""
        for block in self.fn.blocks:
            for instr in block.instrs:
                if instr.op == "call":
                    callee = self.module.functions[instr.args[1]]
                    if len(instr.args[2]) > MAX_REG_ARGS and self._callee_uses_oia(callee.name):
                        return True
                elif instr.op == "icall":
                    if len(instr.args[2]) > MAX_REG_ARGS and self.mplan.oia_enabled:
                        return True
        return False

    def _callee_uses_oia(self, callee: str) -> bool:
        return self.mplan.function_plan(callee).offset_invariant_args

    def _build_frame(self) -> FrameLayout:
        units: List[Tuple[str, int]] = []
        for reg in self.allocation.used_registers:
            units.append((_save_slot(reg), 1))
        for name in self.fn.params:
            units.append((name, 1))
        for name, words in self.fn.locals.items():
            units.append((name, words))
        for index in range(self.allocation.spill_count):
            units.append((_spill_slot(index), 1))
        for index in range(self.fplan.btdp_count):
            units.append((_btdp_slot(index), 1))
        if self._needs_oia_save():
            units.append((_OIA_SAVE_SLOT, 1))
        units.append((_TMP_SLOT, 1))
        rng = self.fplan.slot_rng if self.fplan.shuffle_slots else None
        return build_frame(units, post_offset=self.fplan.post_offset, shuffle_rng=rng)

    # -- emission helpers -------------------------------------------------------

    def emit(self, op: Op, a=None, b=None, *, size=None, tag=None) -> None:
        self.instrs.append(Instruction(op, a, b, size=size, tag=tag))

    def mark(self, label: str) -> None:
        if label in self.labels:
            raise ToolchainError(f"{self.fn.name}: duplicate label {label!r}")
        self.labels[label] = len(self.instrs)

    def slot_mem(self, name: str) -> Mem:
        return Mem(Reg.RSP, self.frame.offset(name) + WORD * self.push_depth)

    def read_into(self, operand: Union[str, int], reg: Reg, *, tag=None) -> None:
        """Materialize an IR operand's value into a machine register."""
        if isinstance(operand, int):
            self.emit(Op.MOV, reg, Imm(operand), tag=tag)
            return
        kind, where = self.allocation.locations[operand]
        if kind == "reg":
            if where != reg:
                self.emit(Op.MOV, reg, where, tag=tag)
        else:
            self.emit(Op.MOV, reg, self.slot_mem(_spill_slot(where)), tag=tag)

    def write_from(self, vreg: str, reg: Reg) -> None:
        """Store a machine register's value into an IR vreg's location."""
        kind, where = self.allocation.locations[vreg]
        if kind == "reg":
            if where != reg:
                self.emit(Op.MOV, where, reg)
        else:
            self.emit(Op.MOV, self.slot_mem(_spill_slot(where)), reg)

    def operand_direct(self, operand: Union[str, int]):
        """Best-effort single-operand form (for OUT); may be reg/imm/mem."""
        if isinstance(operand, int):
            return Imm(operand)
        kind, where = self.allocation.locations[operand]
        return where if kind == "reg" else self.slot_mem(_spill_slot(where))

    # -- prologue / epilogue -------------------------------------------------------

    def lower(self) -> LoweredFunction:
        self._emit_prologue()
        for block in self.fn.blocks:
            self.mark(f".L{block.label}")
            for instr in block.instrs:
                self._lower_instr(instr)
                if self.push_depth != 0:
                    fail(
                        "PLAN004",
                        self.fn.name,
                        f"unbalanced push depth after {instr}",
                        depth=self.push_depth,
                    )
        return LoweredFunction(
            name=self.fn.name,
            instrs=self.instrs,
            labels=self.labels,
            frame=self.frame,
            post_offset=self.fplan.post_offset,
            protected=self.fn.protected,
            has_stack_args=len(self.fn.params) > MAX_REG_ARGS,
            callsites=self.callsites,
            extra_globals=self.extra_globals,
        )

    def _emit_prologue(self) -> None:
        fplan = self.fplan
        if fplan.prolog_traps > 0:
            self.emit(Op.JMP, Label(".Lprolog_body"), tag="prolog-trap-skip")
            for _ in range(fplan.prolog_traps):
                self.emit(Op.TRAP, tag="prolog-trap")
            self.mark(".Lprolog_body")
        if fplan.post_offset > 0:
            self.emit(Op.SUB, Reg.RSP, Imm(WORD * fplan.post_offset), tag="btra-post")
        if self.frame.frame_bytes > 0:
            self.emit(Op.SUB, Reg.RSP, Imm(self.frame.frame_bytes))

        # Park incoming arguments in their frame homes.
        for index, param in enumerate(self.fn.params):
            if index < MAX_REG_ARGS:
                self.emit(Op.MOV, self.slot_mem(param), ARG_REGS[index])
            else:
                stack_index = index - MAX_REG_ARGS
                if fplan.offset_invariant_args:
                    src = Mem(FP_REG, WORD * stack_index)
                else:
                    # rsp-relative: above the frame, the post-offset, and
                    # the return address.
                    offset = (
                        self.frame.frame_bytes
                        + WORD * fplan.post_offset
                        + WORD
                        + WORD * stack_index
                    )
                    src = Mem(Reg.RSP, offset)
                self.emit(Op.MOV, SCRATCH0, src)
                self.emit(Op.MOV, self.slot_mem(param), SCRATCH0)

        # Save the callee-saved registers this function will use.
        for reg in self.allocation.used_registers:
            self.emit(Op.MOV, self.slot_mem(_save_slot(reg)), reg)

        # Write BTDPs into the frame (Section 5.2).
        for j in range(fplan.btdp_count):
            index = fplan.btdp_indices[j] if j < len(fplan.btdp_indices) else 0
            source = self.mplan.btdp_source_symbol
            if source is None:
                fail(
                    "PLAN005",
                    self.fn.name,
                    "BTDP count set but module has no BTDP source",
                    btdp_count=fplan.btdp_count,
                )
            if self.mplan.btdp_source_is_pointer:
                self.emit(Op.MOV, SCRATCH0, Mem(symbol=source), tag="btdp")
                self.emit(
                    Op.MOV, SCRATCH0, Mem(SCRATCH0, WORD * index), tag="btdp"
                )
            else:
                self.emit(
                    Op.MOV, SCRATCH0, Mem(symbol=source, offset=WORD * index), tag="btdp"
                )
            self.emit(Op.MOV, self.slot_mem(_btdp_slot(j)), SCRATCH0, tag="btdp")

    def _emit_epilogue(self) -> None:
        for reg in self.allocation.used_registers:
            self.emit(Op.MOV, reg, self.slot_mem(_save_slot(reg)))
        if self.frame.frame_bytes > 0:
            self.emit(Op.ADD, Reg.RSP, Imm(self.frame.frame_bytes))
        if self.fplan.post_offset > 0:
            self.emit(
                Op.ADD, Reg.RSP, Imm(WORD * self.fplan.post_offset), tag="btra-post-revert"
            )
        self.emit(Op.RET)

    # -- instruction lowering --------------------------------------------------------

    def _lower_instr(self, instr: IRInstr) -> None:
        op = instr.op
        a = instr.args
        if op == "const":
            self.emit(Op.MOV, SCRATCH0, Imm(a[1]))
            self.write_from(a[0], SCRATCH0)
        elif op == "bin":
            self._lower_bin(a[0], a[1], a[2], a[3])
        elif op == "cmp":
            self.read_into(a[2], SCRATCH0)
            self.read_into(a[3], SCRATCH1)
            self.emit(Op.CMP, SCRATCH0, SCRATCH1)
            setcc = {
                "eq": Op.SETE,
                "ne": Op.SETNE,
                "lt": Op.SETL,
                "le": Op.SETLE,
                "gt": Op.SETG,
                "ge": Op.SETGE,
            }[a[0]]
            self.emit(setcc, SCRATCH0)
            self.write_from(a[1], SCRATCH0)
        elif op == "load":
            self.read_into(a[1], SCRATCH0)
            self.emit(Op.MOV, SCRATCH0, Mem(SCRATCH0, a[2]))
            self.write_from(a[0], SCRATCH0)
        elif op == "store":
            self.read_into(a[0], SCRATCH0)
            self.read_into(a[2], SCRATCH1)
            self.emit(Op.MOV, Mem(SCRATCH0, a[1]), SCRATCH1)
        elif op == "local_load":
            self._lower_slot_load(a[0], self.frame.offset(a[1]), a[2], base=Reg.RSP)
        elif op == "local_store":
            self._lower_slot_store(self.frame.offset(a[0]), a[1], a[2], base=Reg.RSP)
        elif op == "addr_local":
            self.emit(Op.LEA, SCRATCH0, self.slot_mem(a[1]))
            self.write_from(a[0], SCRATCH0)
        elif op == "global_load":
            self._lower_global_load(a[0], a[1], a[2])
        elif op == "global_store":
            self._lower_global_store(a[0], a[1], a[2])
        elif op == "addr_global":
            self.emit(Op.MOV, SCRATCH0, Imm(symbol=a[1]))
            self.write_from(a[0], SCRATCH0)
        elif op == "func_addr":
            slot = self.got_index[a[1]]
            self.emit(Op.MOV, SCRATCH0, Mem(symbol="__got__", offset=WORD * slot))
            self.write_from(a[0], SCRATCH0)
        elif op == "call":
            self._lower_call(a[0], a[1], None, a[2])
        elif op == "icall":
            self._lower_call(a[0], None, a[1], a[2])
        elif op == "rtcall":
            self._lower_rtcall(a[0], a[1], a[2])
        elif op == "br":
            self.emit(Op.JMP, Label(f".L{a[0]}"))
        elif op == "cbr":
            self.read_into(a[0], SCRATCH0)
            self.emit(Op.TEST, SCRATCH0, SCRATCH0)
            self.emit(Op.JNE, Label(f".L{a[1]}"))
            self.emit(Op.JMP, Label(f".L{a[2]}"))
        elif op == "ret":
            if a[0] is None:
                self.emit(Op.MOV, RET_REG, Imm(0))
            else:
                self.read_into(a[0], RET_REG)
            self._emit_epilogue()
        elif op == "out":
            self.emit(Op.OUT, self.operand_direct(a[0]))
        else:  # pragma: no cover - validate() rejects unknown ops
            raise ToolchainError(f"unknown IR opcode {op!r}")

    def _lower_bin(self, op: str, dst: str, lhs, rhs) -> None:
        machine_op = {
            "add": Op.ADD,
            "sub": Op.SUB,
            "mul": Op.IMUL,
            "div": Op.IDIV,
            "and": Op.AND,
            "or": Op.OR,
            "xor": Op.XOR,
            "shl": Op.SHL,
            "shr": Op.SHR,
        }.get(op)
        if machine_op is not None:
            self.read_into(lhs, SCRATCH0)
            self.read_into(rhs, SCRATCH1)
            self.emit(machine_op, SCRATCH0, SCRATCH1)
            self.write_from(dst, SCRATCH0)
            return
        if op == "mod":
            # r = a - trunc(a / b) * b, with the dividend parked in the
            # scratch frame slot (both scratch registers are in use).
            self.read_into(lhs, SCRATCH0)
            self.read_into(rhs, SCRATCH1)
            self.emit(Op.MOV, self.slot_mem(_TMP_SLOT), SCRATCH0)
            self.emit(Op.IDIV, SCRATCH0, SCRATCH1)
            self.emit(Op.IMUL, SCRATCH0, SCRATCH1)
            self.emit(Op.MOV, SCRATCH1, self.slot_mem(_TMP_SLOT))
            self.emit(Op.SUB, SCRATCH1, SCRATCH0)
            self.write_from(dst, SCRATCH1)
            return
        raise ToolchainError(f"unknown binary op {op!r}")

    def _lower_slot_load(self, dst: str, base_offset: int, index, *, base: Reg) -> None:
        if isinstance(index, int):
            mem = Mem(base, base_offset + WORD * index + WORD * self.push_depth)
            self.emit(Op.MOV, SCRATCH0, mem)
        else:
            self.read_into(index, SCRATCH0)
            mem = Mem(base, base_offset + WORD * self.push_depth, index=SCRATCH0, scale=WORD)
            self.emit(Op.MOV, SCRATCH0, mem)
        self.write_from(dst, SCRATCH0)

    def _lower_slot_store(self, base_offset: int, index, value, *, base: Reg) -> None:
        self.read_into(value, SCRATCH1)
        if isinstance(index, int):
            mem = Mem(base, base_offset + WORD * index + WORD * self.push_depth)
        else:
            self.read_into(index, SCRATCH0)
            mem = Mem(base, base_offset + WORD * self.push_depth, index=SCRATCH0, scale=WORD)
        self.emit(Op.MOV, mem, SCRATCH1)

    def _lower_global_load(self, dst: str, gname: str, index) -> None:
        if isinstance(index, int):
            self.emit(Op.MOV, SCRATCH0, Mem(symbol=gname, offset=WORD * index))
        else:
            self.read_into(index, SCRATCH0)
            self.emit(Op.MOV, SCRATCH0, Mem(symbol=gname, index=SCRATCH0, scale=WORD))
        self.write_from(dst, SCRATCH0)

    def _lower_global_store(self, gname: str, index, value) -> None:
        self.read_into(value, SCRATCH1)
        if isinstance(index, int):
            mem = Mem(symbol=gname, offset=WORD * index)
        else:
            self.read_into(index, SCRATCH0)
            mem = Mem(symbol=gname, index=SCRATCH0, scale=WORD)
        self.emit(Op.MOV, mem, SCRATCH1)

    # -- call lowering -----------------------------------------------------------

    def _lower_rtcall(self, dst: Optional[str], service: str, args: Sequence) -> None:
        if len(args) > MAX_REG_ARGS:
            raise ToolchainError(f"rtcall {service!r} with more than 6 args")
        for index, arg in enumerate(args):
            self.read_into(arg, ARG_REGS[index])
        self.emit(Op.CALLRT, Imm(symbol=service))
        if dst is not None:
            self.write_from(dst, RET_REG)

    def _lower_call(
        self,
        dst: Optional[str],
        callee: Optional[str],
        target,
        args: Sequence,
    ) -> None:
        cs_index = self.callsite_counter
        self.callsite_counter += 1
        csplan = self.fplan.call_site(cs_index)

        nstack = max(0, len(args) - MAX_REG_ARGS)
        pad = nstack % 2
        if callee is not None:
            callee_oia = self._callee_uses_oia(callee)
        else:
            callee_oia = self.mplan.oia_enabled
        use_oia = nstack > 0 and callee_oia

        # NOP insertion at the call site (Section 4.3).
        for _ in range(csplan.nops_before):
            self.emit(Op.NOP, tag="nop-insertion")

        # Stack arguments (and the alignment pad), pushed last-to-first.
        if nstack > 0:
            if pad:
                self.emit(Op.PUSH, Imm(0), tag="align-pad")
                self.push_depth += 1
            for arg in reversed(args[MAX_REG_ARGS:]):
                self.read_into(arg, SCRATCH0)
                self.emit(Op.PUSH, SCRATCH0)
                self.push_depth += 1
            if use_oia:
                # Offset-invariant addressing: park rbp at the lowest
                # stack argument; the callee reads [rbp + 8k].
                self.emit(Op.MOV, self.slot_mem(_OIA_SAVE_SLOT), FP_REG, tag="oia")
                self.emit(Op.MOV, FP_REG, Reg.RSP, tag="oia")

        # Register arguments.
        for index in range(min(len(args), MAX_REG_ARGS)):
            self.read_into(args[index], ARG_REGS[index])

        # Indirect target, evaluated after the args (into scratch0, which
        # no argument move clobbers afterwards).
        if callee is None:
            self.read_into(target, SCRATCH0)

        ret_label = f".Lret{cs_index}"
        pre = csplan.pre_count
        post = csplan.post_count
        if csplan.enabled:
            if pre % 2 != 0:
                fail(
                    "PLAN002",
                    f"{self.fn.name} call site {cs_index}",
                    f"odd pre-BTRA count {pre}",
                    pre_count=pre,
                )
            if csplan.use_avx:
                self._emit_btra_avx(csplan, cs_index, ret_label)
            else:
                self._emit_btra_push(csplan, ret_label)
            self.push_depth += pre

        if callee is not None:
            self.emit(Op.CALL, Imm(symbol=callee))
        else:
            self.emit(Op.CALL, SCRATCH0)
        self.mark(ret_label)

        if csplan.enabled:
            if csplan.check_index is not None and csplan.pre_btras and not csplan.racy:
                # Section 7.3 hardening: verify one pre-BTRA survived the
                # call; a mismatch means someone corrupted return-address
                # candidates (e.g. a PIROP spray) — detonate.
                index = csplan.check_index % len(csplan.pre_btras)
                symbol, offset = csplan.pre_btras[index]
                slot = WORD * (pre - 1 - index)
                ok_label = f".Lbtra_ok{cs_index}"
                self.emit(
                    Op.CMP, Mem(Reg.RSP, slot), Imm(offset, symbol=symbol),
                    tag="btra-check",
                )
                self.emit(Op.JE, Label(ok_label), tag="btra-check")
                self.emit(Op.TRAP, tag="btra-check-trap")
                self.mark(ok_label)
            self.emit(Op.ADD, Reg.RSP, Imm(WORD * pre), tag="btra-revert")
            self.push_depth -= pre
        if nstack > 0:
            self.emit(Op.ADD, Reg.RSP, Imm(WORD * (nstack + pad)))
            self.push_depth -= nstack + pad
            if use_oia:
                self.emit(Op.MOV, FP_REG, self.slot_mem(_OIA_SAVE_SLOT), tag="oia")
        if dst is not None:
            self.write_from(dst, RET_REG)

        self.callsites.append(
            LoweredCallSite(
                ret_label=ret_label,
                callee=callee,
                pre_words=pre,
                post_words=post,
                cleanup_words=nstack + pad,
                uses_btra=csplan.enabled,
                use_avx=csplan.use_avx,
            )
        )

    def _emit_btra_push(self, csplan: CallSitePlan, ret_label: str) -> None:
        """Push-based BTRA setup (Figure 3): up to 12 pushes + rsp adjust.

        In the ``racy`` ablation variant the return address is *not*
        pre-written; the ``call`` instruction appends it below the
        pre-BTRAs afterwards — re-opening the observable race window the
        real sequence closes (Section 5.1).
        """
        for symbol, offset in csplan.pre_btras:
            self.emit(Op.PUSH, Imm(offset, symbol=symbol), tag="btra-setup")
        if csplan.racy:
            if csplan.post_btras:
                fail(
                    "PLAN003",
                    f"{self.fn.name}::{ret_label}",
                    "racy BTRA variant cannot carry post-BTRAs",
                    post_count=csplan.post_count,
                )
            return
        self.emit(
            Op.PUSH, Imm(symbol=f"{self.fn.name}::{ret_label}"), tag="btra-setup"
        )
        for symbol, offset in csplan.post_btras:
            self.emit(Op.PUSH, Imm(offset, symbol=symbol), tag="btra-setup")
        # Reposition rsp one slot above the return address so the call
        # overwrites it in place (steps 2-3 of Figure 3).
        self.emit(
            Op.ADD,
            Reg.RSP,
            Imm(WORD * (csplan.post_count + 1)),
            tag="btra-setup",
        )

    def _emit_btra_avx(self, csplan: CallSitePlan, cs_index: int, ret_label: str) -> None:
        """Vector-batched BTRA setup (Figure 4, Section 5.1.2).

        The BTRAs and return address live in a call-site specific array in
        the data section; vector loads/stores write them to the stack in
        batch, then rsp is repositioned above the return-address slot.
        The batch width comes from the plan: 4 words (AVX2 ymm) or 8
        words (AVX-512 zmm, the Section 7.1 variant).
        """
        width = self.mplan.vector_words
        if width == VECTOR_WORDS:
            load_op, store_op = Op.VLOAD, Op.VSTORE
        elif width == 2 * VECTOR_WORDS:
            load_op, store_op = Op.VLOAD512, Op.VSTORE512
        else:
            raise ToolchainError(f"unsupported vector width {width}")
        pre = csplan.pre_count
        post = csplan.post_count
        real_words = pre + 1 + post
        padded = (real_words + width - 1) // width * width
        pad_count = padded - real_words

        # Ascending memory image: [padding][post reversed][RA][pre reversed].
        entries: List[Tuple[str, int]] = []
        pool = csplan.post_btras or csplan.pre_btras
        for i in range(pad_count):
            entries.append(pool[i % len(pool)])
        entries.extend(reversed(csplan.post_btras))
        entries.append((f"{self.fn.name}::{ret_label}", 0))
        entries.extend(reversed(csplan.pre_btras))

        array_name = f"__btra_arr_{self.fn.name}_{cs_index}"
        self.extra_globals.append(
            GlobalVar(array_name, size_words=padded, init=tuple(entries))
        )

        base = -WORD * padded
        step = WORD * width
        for vec in range(padded // width):
            self.emit(
                load_op,
                Reg.YMM0,
                Mem(symbol=array_name, offset=step * vec),
                tag="btra-setup",
            )
            self.emit(
                store_op,
                Mem(Reg.RSP, base + step * vec),
                Reg.YMM0,
                tag="btra-setup",
            )
        self.emit(Op.VZEROUPPER, tag="btra-setup")
        self.emit(Op.SUB, Reg.RSP, Imm(WORD * pre), tag="btra-setup")


def collect_got(module: Module) -> Dict[str, int]:
    """Assign GOT slots to every function whose address is taken."""
    got: Dict[str, int] = {}
    for fn in module.functions.values():
        for block in fn.blocks:
            for instr in block.instrs:
                if instr.op == "func_addr" and instr.args[1] not in got:
                    got[instr.args[1]] = len(got)
    return got


def lower_booby_trap(name: str, trap_count: int) -> LoweredFunction:
    """Synthesize a booby-trap function: an all-TRAP body.

    Each TRAP encodes in one byte, so any BTRA offset into the body lands
    on a valid instruction — and detonates.
    """
    instrs = [Instruction(Op.TRAP, tag="booby-trap") for _ in range(max(1, trap_count))]
    return LoweredFunction(
        name=name,
        instrs=instrs,
        labels={},
        frame=None,
        post_offset=0,
        protected=False,
        has_stack_args=False,
    )


def lower_trampoline(name: str, target: str) -> LoweredFunction:
    """Synthesize a CPH trampoline: a single jump to the hidden target."""
    instrs = [Instruction(Op.JMP, Imm(symbol=target), tag="cph-trampoline")]
    return LoweredFunction(
        name=name,
        instrs=instrs,
        labels={},
        frame=None,
        post_offset=0,
        protected=False,
        has_stack_args=False,
    )


def lower_module(module: Module, mplan: ModulePlan) -> Dict[str, LoweredFunction]:
    """Lower every function (and synthesize booby traps and CPH
    trampolines) under ``mplan``."""
    module.validate()
    got_index = collect_got(module)
    lowered: Dict[str, LoweredFunction] = {}
    for name, fn in module.functions.items():
        fplan = mplan.function_plan(name)
        lowered[name] = _FunctionLowerer(module, fn, mplan, fplan, got_index).lower()
    for bt_name, trap_count in mplan.booby_trap_functions:
        if bt_name in lowered:
            raise ToolchainError(f"booby trap name {bt_name!r} collides with a function")
        lowered[bt_name] = lower_booby_trap(bt_name, trap_count)
    for tramp_name, target in mplan.trampolines:
        if tramp_name in lowered:
            raise ToolchainError(f"trampoline name {tramp_name!r} collides")
        if target not in module.functions:
            raise ToolchainError(f"trampoline target {target!r} unknown")
        lowered[tramp_name] = lower_trampoline(tramp_name, target)
    return lowered
