"""Stack unwinding over BTRA-diversified frames (Section 7.2.4).

The paper claims R2C stays compatible with exception handling and stack
unwinding because the BTRA setup/teardown emits CFI directives recording
every stack-pointer adjustment.  Our ``.eh_frame`` analogue is the pair of
:class:`~repro.toolchain.binary.FrameRecord` (per function: frame size and
BTRA post-offset, keyed by PC range) and
:class:`~repro.toolchain.binary.CallSiteRecord` (per call site: BTRA
pre-offset and argument cleanup, keyed by return-address PC).

:func:`unwind` walks a live process's stack using only those records —
never the diversification plan — proving the metadata suffices to unwind
through any number of BTRAs.  Like a real unwinder it is process-internal
and privileged (it reads memory regardless of page permissions), and it
*fails loudly* on a corrupted stack: a return address that does not map to
a known call site raises :class:`UnwindError`, exactly how a real unwinder
surfaces smashed stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ReproError
from repro.machine.memory import WORD_BYTES
from repro.machine.process import Process

WORD = WORD_BYTES


class UnwindError(ReproError):
    """The stack cannot be unwound (corrupted or untracked frame)."""


@dataclass
class UnwindFrame:
    """One logical frame produced by the unwinder."""

    function: str
    pc_offset: int  # text offset of the resume point inside the function
    frame_rsp: int  # rsp as seen by the function's body
    return_address: int  # absolute RA this frame will return to


def unwind(process: Process, rip: int, rsp: int, *, max_frames: int = 64) -> List[UnwindFrame]:
    """Walk the stack from (rip, rsp); innermost frame first.

    Preconditions mirror a real unwinder invoked at a call boundary: the
    innermost function has completed its prologue (rsp is at its body
    position), and every outer function is suspended at a call site.
    """
    binary = process.binary
    if binary is None:
        raise UnwindError("process has no binary metadata")
    text_base = process.text_base

    frames: List[UnwindFrame] = []
    while len(frames) < max_frames:
        offset = rip - text_base
        function = binary.function_at_offset(offset)
        if function is None:
            raise UnwindError(f"pc {rip:#x} is outside any known function")
        record = binary.frame_records[function]

        ra_slot = rsp + record.frame_bytes + WORD * record.post_offset
        return_address = process.memory.load_word_raw(ra_slot)
        frames.append(
            UnwindFrame(
                function=function,
                pc_offset=offset - record.entry_offset,
                frame_rsp=rsp,
                return_address=return_address,
            )
        )
        if function == "_start":
            break

        ra_offset = return_address - text_base
        site = binary.callsite_records.get(ra_offset)
        if site is None:
            # _start's synthesized call has no record; anything else is a
            # corrupted or non-return-address word where the RA should be.
            caller = binary.function_at_offset(ra_offset)
            if caller == "_start":
                frames.append(
                    UnwindFrame(
                        function="_start",
                        pc_offset=ra_offset,
                        frame_rsp=ra_slot + WORD,
                        return_address=0,
                    )
                )
                break
            raise UnwindError(
                f"return address {return_address:#x} does not resume a call site"
            )
        rip = return_address
        rsp = ra_slot + WORD + WORD * (site.pre_words + site.cleanup_words)
    return frames


def backtrace(process: Process, rip: int, rsp: int) -> List[str]:
    """Function names innermost-first (a `bt` convenience)."""
    return [frame.function for frame in unwind(process, rip, rsp)]
