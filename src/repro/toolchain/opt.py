"""IR optimization passes (the -O pipeline).

The paper compiles everything at ``-O3`` with ThinLTO (Section 6.2); this
module provides the analogous (much smaller) optimizer so the compiler can
be exercised at different optimization levels:

* **constant folding** — block-local value tracking folds ``bin``/``cmp``
  over known constants and substitutes constants into operands.  Folding
  reuses the *interpreter's* arithmetic helpers, so optimized semantics
  are identical to unoptimized semantics by construction.
* **branch folding** — ``cbr`` on a known condition becomes ``br``.
* **unreachable-block elimination** — blocks no longer reachable from the
  entry block are dropped.
* **dead-code elimination** — side-effect-free instructions whose results
  are never used are removed, iterated to a fixpoint.

Calls (direct, indirect, runtime) are never removed or reordered: they
carry the side effects the workloads (and the BTRA cost model) measure.

Optimization happens before diversification planning, so baseline and
protected builds of a module are optimized identically — the fair-
comparison requirement of Section 6.2.  An interesting consequence the
ablation bench measures: higher optimization shrinks the arithmetic
around each call, *raising* R2C's relative overhead — one reason the
paper's -O3 numbers are a worst case for call-dense code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.numeric import MASK64, to_signed as _signed
from repro.toolchain.interp import Interpreter
from repro.toolchain.ir import BasicBlock, Function, IRInstr, Module

Operand = Union[str, int]

#: Instructions safe to delete when their result is unused.  Loads are
#: included: removing a load from a *well-defined* program (one that never
#: faults) cannot change its observable behaviour.
_PURE_OPS = {
    "const",
    "bin",
    "cmp",
    "load",
    "local_load",
    "addr_local",
    "global_load",
    "addr_global",
    "func_addr",
}

_FOLDABLE_DIV = {"div", "mod"}


def optimize_module(module: Module, level: int = 1) -> Module:
    """Optimize ``module`` in place; returns it for chaining."""
    if level <= 0:
        return module
    for fn in module.functions.values():
        _optimize_function(fn)
    module.validate()
    return module


def _optimize_function(fn: Function) -> None:
    changed = True
    passes = 0
    while changed and passes < 8:
        changed = False
        changed |= _fold_constants(fn)
        changed |= _fold_branches(fn)
        changed |= _drop_unreachable_blocks(fn)
        changed |= _eliminate_dead_code(fn)
        passes += 1


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

def _fold_constants(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        known: Dict[str, int] = {}
        new_instrs: List[IRInstr] = []
        for instr in block.instrs:
            instr = _substitute(instr, known)
            op = instr.op
            a = instr.args
            if op == "const":
                known[a[0]] = a[1] & MASK64
            elif op == "bin" and isinstance(a[2], int) and isinstance(a[3], int):
                if a[0] in _FOLDABLE_DIV and _signed(a[3] & MASK64) == 0:
                    pass  # preserve the runtime division-by-zero fault
                else:
                    value = Interpreter._binop(a[0], a[2] & MASK64, a[3] & MASK64)
                    known[a[1]] = value
                    instr = IRInstr("const", (a[1], value))
                    changed = True
            elif op == "cmp" and isinstance(a[2], int) and isinstance(a[3], int):
                value = Interpreter._cmp(a[0], a[2] & MASK64, a[3] & MASK64)
                known[a[1]] = value
                instr = IRInstr("const", (a[1], value))
                changed = True
            else:
                # Any other definition invalidates previous knowledge of
                # that vreg (it is being redefined with an unknown value).
                defined = _defined_vreg(instr)
                if defined is not None:
                    known.pop(defined, None)
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed


def _substitute(instr: IRInstr, known: Dict[str, int]) -> IRInstr:
    """Replace known-constant vreg operands with their values."""

    def sub(value):
        if isinstance(value, str) and value in known:
            return known[value]
        return value

    op = instr.op
    a = instr.args
    if op == "bin":
        return IRInstr(op, (a[0], a[1], sub(a[2]), sub(a[3])))
    if op == "cmp":
        return IRInstr(op, (a[0], a[1], sub(a[2]), sub(a[3])))
    if op == "load":
        return IRInstr(op, (a[0], sub(a[1]), a[2]))
    if op == "store":
        return IRInstr(op, (sub(a[0]), a[1], sub(a[2])))
    if op == "local_load":
        return IRInstr(op, (a[0], a[1], sub(a[2])))
    if op == "local_store":
        return IRInstr(op, (a[0], sub(a[1]), sub(a[2])))
    if op == "global_load":
        return IRInstr(op, (a[0], a[1], sub(a[2])))
    if op == "global_store":
        return IRInstr(op, (a[0], sub(a[1]), sub(a[2])))
    if op in ("call", "rtcall"):
        return IRInstr(op, (a[0], a[1], tuple(sub(x) for x in a[2])))
    if op == "icall":
        return IRInstr(op, (a[0], sub(a[1]), tuple(sub(x) for x in a[2])))
    if op == "cbr":
        return IRInstr(op, (sub(a[0]), a[1], a[2]))
    if op == "ret" and a[0] is not None:
        return IRInstr(op, (sub(a[0]),))
    if op == "out":
        return IRInstr(op, (sub(a[0]),))
    return instr


def _defined_vreg(instr: IRInstr) -> Optional[str]:
    op = instr.op
    a = instr.args
    if op == "const":
        return a[0]
    if op in ("bin", "cmp"):
        return a[1]
    if op in (
        "load",
        "local_load",
        "addr_local",
        "global_load",
        "addr_global",
        "func_addr",
    ):
        return a[0]
    if op in ("call", "icall", "rtcall"):
        return a[0]
    return None


# ---------------------------------------------------------------------------
# branch folding and unreachable blocks
# ---------------------------------------------------------------------------

def _fold_branches(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        term = block.terminator
        if term is not None and term.op == "cbr" and isinstance(term.args[0], int):
            target = term.args[1] if term.args[0] != 0 else term.args[2]
            block.instrs[-1] = IRInstr("br", (target,))
            changed = True
    return changed


def _drop_unreachable_blocks(fn: Function) -> bool:
    reachable: Set[str] = set()
    stack = [fn.entry.label]
    by_label = {b.label: b for b in fn.blocks}
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        term = by_label[label].terminator
        if term is None:
            continue
        if term.op == "br":
            stack.append(term.args[0])
        elif term.op == "cbr":
            stack.extend(term.args[1:3])
    if len(reachable) == len(fn.blocks):
        return False
    fn.blocks = [b for b in fn.blocks if b.label in reachable]
    return True


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------

def _eliminate_dead_code(fn: Function) -> bool:
    used: Set[str] = set()
    for block in fn.blocks:
        for instr in block.instrs:
            for operand in _operands_read(instr):
                if isinstance(operand, str):
                    used.add(operand)
    changed = False
    for block in fn.blocks:
        kept = []
        for instr in block.instrs:
            defined = _defined_vreg(instr)
            if (
                instr.op in _PURE_OPS
                and defined is not None
                and defined not in used
            ):
                changed = True
                continue
            kept.append(instr)
        block.instrs = kept
    return changed


def _operands_read(instr: IRInstr):
    op = instr.op
    a = instr.args
    if op in ("bin", "cmp"):
        return [a[2], a[3]]
    if op == "load":
        return [a[1]]
    if op == "store":
        return [a[0], a[2]]
    if op == "local_load":
        return [a[2]]
    if op == "local_store":
        return [a[1], a[2]]
    if op == "global_load":
        return [a[2]]
    if op == "global_store":
        return [a[1], a[2]]
    if op in ("call", "rtcall"):
        return list(a[2])
    if op == "icall":
        return [a[1], *a[2]]
    if op == "cbr":
        return [a[0]]
    if op == "ret":
        return [a[0]] if a[0] is not None else []
    if op == "out":
        return [a[0]]
    return []
