"""Fluent construction API for IR modules.

``IRBuilder`` creates modules; ``FunctionBuilder`` appends instructions to
a current block and mints fresh virtual registers.  All the workloads and
examples are written against this API, so it doubles as the package's
"frontend".

Example::

    ir = IRBuilder("demo")
    f = ir.function("square", params=["x"])
    r = f.mul(f.param("x"), f.param("x"))
    f.ret(r)
    main = ir.function("main")
    main.out(main.call("square", [7]))
    main.ret(0)
    module = ir.finish()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ToolchainError
from repro.obs.tracing import span
from repro.toolchain.ir import (
    BasicBlock,
    Function,
    GlobalVar,
    IRInstr,
    Module,
    Operand,
)


class FunctionBuilder:
    """Builds one function, block by block."""

    def __init__(self, module: Module, fn: Function):
        self._module = module
        self.fn = fn
        self._temp = 0
        self._block: Optional[BasicBlock] = None
        self.new_block("entry")

    # -- structure ----------------------------------------------------------

    def new_block(self, label: Optional[str] = None) -> str:
        """Start a new block and make it current; returns its label."""
        if label is None:
            label = f"bb{len(self.fn.blocks)}"
        block = BasicBlock(label)
        self.fn.blocks.append(block)
        self._block = block
        return label

    def switch_to(self, label: str) -> None:
        self._block = self.fn.block(label)

    def local(self, name: str, size_words: int = 1) -> str:
        """Declare a stack local (scalar or word array); returns its name."""
        if name in self.fn.locals:
            raise ToolchainError(f"duplicate local {name!r}")
        self.fn.locals[name] = size_words
        return name

    def param(self, name: str) -> str:
        """Load a parameter's current value into a fresh vreg."""
        if name not in self.fn.params:
            raise ToolchainError(f"{name!r} is not a parameter of {self.fn.name}")
        return self.load_local(name)

    def fresh(self, hint: str = "t") -> str:
        self._temp += 1
        return f"%{hint}{self._temp}"

    def _emit(self, op: str, *args) -> None:
        if self._block is None:
            raise ToolchainError("no current block")
        if self._block.terminator is not None:
            raise ToolchainError(
                f"{self.fn.name}/{self._block.label}: emitting after terminator"
            )
        self._block.instrs.append(IRInstr(op, tuple(args)))

    # -- values ---------------------------------------------------------------

    def const(self, value: int) -> str:
        dst = self.fresh("c")
        self._emit("const", dst, value)
        return dst

    def _bin(self, op: str, a: Operand, b: Operand) -> str:
        dst = self.fresh(op)
        self._emit("bin", op, dst, a, b)
        return dst

    def add(self, a: Operand, b: Operand) -> str:
        return self._bin("add", a, b)

    def sub(self, a: Operand, b: Operand) -> str:
        return self._bin("sub", a, b)

    def mul(self, a: Operand, b: Operand) -> str:
        return self._bin("mul", a, b)

    def div(self, a: Operand, b: Operand) -> str:
        return self._bin("div", a, b)

    def mod(self, a: Operand, b: Operand) -> str:
        return self._bin("mod", a, b)

    def band(self, a: Operand, b: Operand) -> str:
        return self._bin("and", a, b)

    def bor(self, a: Operand, b: Operand) -> str:
        return self._bin("or", a, b)

    def bxor(self, a: Operand, b: Operand) -> str:
        return self._bin("xor", a, b)

    def shl(self, a: Operand, b: Operand) -> str:
        return self._bin("shl", a, b)

    def shr(self, a: Operand, b: Operand) -> str:
        return self._bin("shr", a, b)

    def cmp(self, pred: str, a: Operand, b: Operand) -> str:
        dst = self.fresh("cmp")
        self._emit("cmp", pred, dst, a, b)
        return dst

    # -- memory -----------------------------------------------------------------

    def load(self, addr: Operand, offset: int = 0) -> str:
        dst = self.fresh("ld")
        self._emit("load", dst, addr, offset)
        return dst

    def store(self, addr: Operand, value: Operand, offset: int = 0) -> None:
        self._emit("store", addr, offset, value)

    def load_local(self, name: str, index: Operand = 0) -> str:
        dst = self.fresh("l")
        self._emit("local_load", dst, name, index)
        return dst

    def store_local(self, name: str, value: Operand, index: Operand = 0) -> None:
        self._emit("local_store", name, index, value)

    def addr_local(self, name: str) -> str:
        dst = self.fresh("a")
        self._emit("addr_local", dst, name)
        return dst

    def load_global(self, name: str, index: Operand = 0) -> str:
        dst = self.fresh("g")
        self._emit("global_load", dst, name, index)
        return dst

    def store_global(self, name: str, value: Operand, index: Operand = 0) -> None:
        self._emit("global_store", name, index, value)

    def addr_global(self, name: str) -> str:
        dst = self.fresh("ga")
        self._emit("addr_global", dst, name)
        return dst

    def func_addr(self, fname: str) -> str:
        dst = self.fresh("fp")
        self._emit("func_addr", dst, fname)
        return dst

    # -- calls -------------------------------------------------------------------

    def call(self, fname: str, args: Sequence[Operand] = (), *, void: bool = False):
        dst = None if void else self.fresh("r")
        self._emit("call", dst, fname, tuple(args))
        return dst

    def icall(self, target: Operand, args: Sequence[Operand] = (), *, void: bool = False):
        dst = None if void else self.fresh("r")
        self._emit("icall", dst, target, tuple(args))
        return dst

    def rtcall(self, service: str, args: Sequence[Operand] = (), *, void: bool = False):
        dst = None if void else self.fresh("r")
        self._emit("rtcall", dst, service, tuple(args))
        return dst

    # -- control flow ----------------------------------------------------------

    def br(self, label: str) -> None:
        self._emit("br", label)

    def cbr(self, cond: Operand, then_label: str, else_label: str) -> None:
        self._emit("cbr", cond, then_label, else_label)

    def ret(self, value: Optional[Operand] = None) -> None:
        self._emit("ret", value)

    def out(self, value: Operand) -> None:
        self._emit("out", value)

    # -- convenience -----------------------------------------------------------

    def counted_loop(self, count: Operand, body_label: str, exit_label: str) -> str:
        """Emit a loop header counting ``i`` from 0 to count-1.

        Returns the name of the induction-variable local.  The caller emits
        the body at ``body_label`` and must end it with
        ``loop_backedge(...)``.  Kept deliberately explicit rather than
        magical — workloads that need more control build loops by hand.
        """
        ivar = f"__i_{body_label}"
        self.local(ivar)
        self.store_local(ivar, 0)
        self.br(f"{body_label}_header")
        self.new_block(f"{body_label}_header")
        i = self.load_local(ivar)
        done = self.cmp("ge", i, count)
        self.cbr(done, exit_label, body_label)
        self.new_block(body_label)
        return ivar

    def loop_backedge(self, ivar: str, body_label: str) -> None:
        i = self.load_local(ivar)
        self.store_local(ivar, self.add(i, 1))
        self.br(f"{body_label}_header")


class IRBuilder:
    """Builds a module."""

    def __init__(self, name: str = "module"):
        self.module = Module(name)
        self._builders: Dict[str, FunctionBuilder] = {}

    def function(
        self, name: str, params: Sequence[str] = (), *, protected: bool = True
    ) -> FunctionBuilder:
        fn = Function(name, params=list(params), protected=protected)
        self.module.add_function(fn)
        builder = FunctionBuilder(self.module, fn)
        self._builders[name] = builder
        return builder

    def global_var(
        self,
        name: str,
        size_words: int = 1,
        init: Sequence[Union[int, tuple]] = (),
    ) -> GlobalVar:
        return self.module.add_global(GlobalVar(name, size_words, tuple(init)))

    def finish(self) -> Module:
        """Validate and return the module."""
        with span("frontend/finish", "frontend", module=self.module.name):
            self.module.validate()
        return self.module
