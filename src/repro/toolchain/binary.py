"""Linked binary representation.

A :class:`Binary` is position-independent: the text stream and data image
are laid out at offset 0 and carry symbolic relocations; the loader
(:mod:`repro.machine.loader`) rebases them under ASLR, mirroring a PIE
executable.  Besides code and data it carries:

* **frame records** — the ``.eh_frame`` analogue (Section 7.2.4): per
  function, the frame size, the BTRA post-offset, and the PC range.  Rows
  are keyed by PC ranges, not symbols, and their order follows the
  (shuffled) text layout — which is why function reordering invalidates
  row-based inference, as the paper argues.
* **call-site records** — per call site, the pre-offset and the stack-arg
  cleanup, enough for a precise unwinder.  These are *defender-side*
  metadata: attack code never reads them; tests and the unwinder do.
* **constructors** — host-side initialization run by the loader before
  ``_start`` (the R2C runtime constructor of Section 5.2 registers here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import LinkError
from repro.machine.isa import Instruction


@dataclass
class FrameRecord:
    """Unwind/frame info for one function (one .eh_frame FDE).

    ``slot_offsets`` (byte offsets of frame slots from the post-setup rsp)
    is recoverable from any binary by static analysis, so an attacker may
    legitimately use it *for their own copy* of the software — never for
    the victim's.
    """

    name: str
    entry_offset: int
    end_offset: int
    frame_bytes: int
    post_offset: int
    protected: bool
    has_stack_args: bool
    slot_offsets: Dict[str, int] = field(default_factory=dict)


@dataclass
class CallSiteRecord:
    """Defender-side ground truth for one lowered call site."""

    ret_offset: int  # text offset the call returns to
    caller: str
    callee: Optional[str]  # None for indirect calls
    pre_words: int  # BTRAs above the return address
    post_words: int  # BTRAs pushed below the return address
    cleanup_words: int  # stack args + alignment pad popped after the call
    uses_btra: bool = False
    use_avx: bool = False


Constructor = Callable[..., None]


@dataclass
class Binary:
    """A linked, position-independent program image."""

    name: str
    text: List[Tuple[int, Instruction]] = field(default_factory=list)
    text_size: int = 0
    data_image: bytearray = field(default_factory=bytearray)
    data_relocs: List[Tuple[int, str, int]] = field(default_factory=list)
    data_size: int = 0
    symbols_text: Dict[str, int] = field(default_factory=dict)
    symbols_data: Dict[str, int] = field(default_factory=dict)
    frame_records: Dict[str, FrameRecord] = field(default_factory=dict)
    callsite_records: Dict[int, CallSiteRecord] = field(default_factory=dict)
    constructors: List[Constructor] = field(default_factory=list)
    entry_symbol: str = "_start"
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def module_fingerprint(self) -> Optional[str]:
        """Content hash of the source module, stamped by the compiler."""
        return self.metadata.get("module_fingerprint")

    @property
    def config_digest(self) -> Optional[str]:
        """Digest of the :class:`R2CConfig` this binary was built under."""
        return self.metadata.get("config_digest")

    def symbol_offset(self, name: str) -> Tuple[str, int]:
        """Return ("text"|"data", offset) for a symbol."""
        if name in self.symbols_text:
            return "text", self.symbols_text[name]
        if name in self.symbols_data:
            return "data", self.symbols_data[name]
        raise LinkError(f"undefined symbol {name!r}")

    def function_names(self) -> List[str]:
        return list(self.frame_records)

    def function_range(self, name: str) -> Tuple[int, int]:
        record = self.frame_records[name]
        return record.entry_offset, record.end_offset

    def function_at_offset(self, offset: int) -> Optional[str]:
        for name, record in self.frame_records.items():
            if record.entry_offset <= offset < record.end_offset:
                return name
        return None

    def eh_frame_rows(self) -> List[Tuple[int, int, int, int]]:
        """The .eh_frame analogue: (pc_start, pc_end, frame_bytes, post_offset).

        Rows are ordered by PC — i.e. by the (shuffled) text layout — and
        carry no symbol names, matching Section 7.2.4.
        """
        rows = [
            (r.entry_offset, r.end_offset, r.frame_bytes, r.post_offset)
            for r in self.frame_records.values()
        ]
        rows.sort()
        return rows

    def instruction_count(self) -> int:
        return len(self.text)
