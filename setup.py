"""Setup shim for environments whose pip cannot build PEP 660 editable
wheels offline (no `wheel` package available).  `pip install -e .` uses
pyproject.toml where possible; `python setup.py develop` uses this."""
from setuptools import setup

setup()
