"""Benchmark-suite plumbing.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md section 4), records its wall time via pytest-benchmark, prints
the rendered artifact, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference concrete numbers.

The experiments are deterministic end-to-end, so every benchmark runs its
payload exactly once (``benchmark.pedantic(rounds=1)``) — repetition would
re-measure identical work.

The suite shares one :class:`repro.eval.engine.ExperimentEngine` per
session, so binaries compiled for one benchmark (e.g. every baseline) are
reused by the rest.  ``pytest benchmarks/ --jobs N`` fans independent
runs out over N worker processes; ``--records-out PATH`` archives every
executed run as JSONL.  The engine's cache/worker summary is saved to
``benchmarks/results/engine_summary.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.engine import ExperimentEngine, set_session_engine
from repro.eval.report import render_engine_summary

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_artifact(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def pytest_addoption(parser):
    group = parser.getgroup("repro", "R2C experiment engine")
    group.addoption(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent experiment runs (default: serial)",
    )
    group.addoption(
        "--records-out",
        default=None,
        metavar="PATH",
        help="append per-run JSONL records to PATH",
    )
    group.addoption(
        "--backend",
        default="reference",
        help="execution backend for experiment runs "
        "(reference or fast; identical results, different wall time)",
    )


@pytest.fixture(scope="session", autouse=True)
def repro_engine(request):
    """One shared engine for the whole benchmark session."""
    engine = set_session_engine(
        ExperimentEngine(
            jobs=request.config.getoption("--jobs"),
            backend=request.config.getoption("--backend"),
        )
    )
    yield engine
    if engine.records:
        save_artifact("engine_summary", render_engine_summary(engine.summary()))
        records_out = request.config.getoption("--records-out")
        if records_out:
            engine.write_records(records_out)
    engine.close()


@pytest.fixture
def run_once(benchmark):
    """Run a payload exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
