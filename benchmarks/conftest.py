"""Benchmark-suite plumbing.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md section 4), records its wall time via pytest-benchmark, prints
the rendered artifact, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference concrete numbers.

The experiments are deterministic end-to-end, so every benchmark runs its
payload exactly once (``benchmark.pedantic(rounds=1)``) — repetition would
re-measure identical work.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_artifact(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)


@pytest.fixture
def run_once(benchmark):
    """Run a payload exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
