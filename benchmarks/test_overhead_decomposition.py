"""Measured overhead decomposition (complements Table 1).

Table 1 isolates components by *recompiling* with one feature at a time;
this bench decomposes a single full-R2C run by attributing cycles to the
instructions each feature emitted (tags on the emitted code).  The two
views must agree on the headline: BTRA setup is the dominant tagged cost
on call-dense code, and almost nothing is unaccounted for (the residual —
i-cache displacement of untagged code — stays small).
"""

from repro.eval.experiments import experiment_overhead_decomposition
from repro.eval.report import render_decomposition

from benchmarks.conftest import save_artifact


def test_overhead_decomposition(run_once):
    def experiment():
        return {
            "omnetpp/avx": experiment_overhead_decomposition(benchmark="omnetpp"),
            "omnetpp/push": experiment_overhead_decomposition(
                benchmark="omnetpp", btra_mode="push"
            ),
            "xz/avx": experiment_overhead_decomposition(benchmark="xz"),
        }

    data = run_once(experiment)
    text = "\n\n".join(
        f"[{label}]\n{render_decomposition(row)}" for label, row in data.items()
    )
    save_artifact("overhead_decomposition", text)

    for label, row in data.items():
        shares = {k: v for k, v in row.items() if k != "total_overhead_pct"}
        # The attribution accounts for (nearly) all added cycles.
        assert 85.0 <= sum(shares.values()) <= 115.0, label
        # BTRA machinery (setup + offsets + reverts) is a major component.
        btra_total = sum(v for k, v in shares.items() if k.startswith("btra"))
        assert btra_total > 15.0, label
    # Push setup spends more on BTRA writes than AVX does.
    push_btra = sum(
        v for k, v in data["omnetpp/push"].items() if k.startswith("btra")
    )
    avx_btra = sum(v for k, v in data["omnetpp/avx"].items() if k.startswith("btra"))
    assert push_btra > avx_btra
