"""Sections 7.2.1 / 7.2.3: probabilistic security guarantees.

* Return-address guessing: with R BTRAs the per-leak success probability
  is 1/(R+1); locating n return addresses succeeds with (1/(R+1))^n —
  0.00007 for R=10, n=4 (the paper's worked example).  Verified against
  Monte-Carlo simulation.
* Heap-pointer picking: a stack leak's heap cluster contains benign
  pointers and BTDPs; the chance of picking a benign one is H/(H+B),
  measured here against real compiled victims with runtime ground truth.
"""

import pytest

from repro.eval.experiments import (
    btra_guess_probability,
    experiment_security_probabilities,
)
from repro.eval.report import render_security_probabilities

from benchmarks.conftest import save_artifact


def test_guessing_probabilities(run_once):
    data = run_once(
        experiment_security_probabilities,
        leaks=(1, 2, 3, 4),
        mc_trials=200_000,
        stack_samples=25,
    )
    save_artifact("security_probabilities", render_security_probabilities(data))

    # The paper's worked example: R=10, n=4 -> ~0.00007.
    assert btra_guess_probability(10, 4) == pytest.approx(7e-5, rel=0.05)
    for n in (1, 2):
        assert data["btra_measured"][n] == pytest.approx(
            data["btra_closed_form"][n], rel=0.25
        )
    # BTDPs materially dilute the heap cluster: picking blind is risky.
    frac = data["heap_benign_fraction"]
    assert frac is not None and frac < 0.75
