"""Section 7.3: the R2C + MVEE combination, measured.

The paper proposes pairing R2C with a Multi-Variant Execution Engine and
argues the combination "would detect data corruption or leakage in one of
the variants with high probability".  This bench quantifies that: for each
attack, compare the single-variant outcome distribution against the
two-variant MVEE outcome distribution over several campaigns.
"""

import json
import os

from repro.attacks.aocr import make_aocr_hook
from repro.attacks.rop import make_rop_hook
from repro.core.config import R2CConfig
from repro.defenses.mvee import MVEE, MveeOutcome
from repro.obs.bench import BenchReport, run_bench, run_lockstep_bench, validate

from benchmarks.conftest import RESULTS_DIR, save_artifact

TRIALS = 6


def test_mvee_detection_rates(run_once):
    def experiment():
        rows = {}
        for label, hook_factory in (("rop", make_rop_hook), ("aocr", make_aocr_hook)):
            tallies = {"clean": 0, "diverged": 0, "trapped": 0, "compromised": 0}
            for trial in range(TRIALS):
                mvee = MVEE(R2CConfig.full(), variants=2, build_seed=900 + trial)
                result = mvee.run(hook_factory(), attacker_seed=trial)
                tallies[result.outcome.value] += 1
            rows[label] = tallies
        # Control: benign runs never diverge.
        benign = {"clean": 0, "diverged": 0, "trapped": 0, "compromised": 0}
        for trial in range(TRIALS):
            mvee = MVEE(R2CConfig.full(), variants=2, build_seed=900 + trial)
            benign[mvee.run().outcome.value] += 1
        rows["benign"] = benign
        return rows

    rows = run_once(experiment)
    lines = ["R2C + MVEE (2 variants) outcome tallies", ""]
    lines.append(f"{'campaign':10s} {'clean':>6s} {'diverged':>9s} {'trapped':>8s} {'compromised':>12s}")
    for label, tallies in rows.items():
        lines.append(
            f"{label:10s} {tallies['clean']:6d} {tallies['diverged']:9d} "
            f"{tallies['trapped']:8d} {tallies['compromised']:12d}"
        )
    save_artifact("mvee_combination", "\n".join(lines))

    assert rows["benign"]["clean"] == TRIALS  # zero false positives
    for label in ("rop", "aocr"):
        assert rows[label]["compromised"] == 0
        detected = rows[label]["diverged"] + rows[label]["trapped"]
        assert detected >= TRIALS // 2, label


def test_lockstep_cost_per_variant(run_once):
    """The amortized-decode claim, measured: a 4-variant LockstepGroup
    completes the webserver workload in under 2.5x the wall cost of one
    variant (one compile + decode + bind serves all four states).  The
    numbers land in a ``repro-bench/v1`` artifact alongside a smoke bench
    grid, so the cost ratio is tracked like any other benchmark."""

    def experiment():
        bench = run_bench(backend="fast", quick=True, workloads=["xz"])
        bench.lockstep = run_lockstep_bench(variants=4, backend="fast")
        return bench

    bench = run_once(experiment)
    text = bench.to_json()
    assert validate(json.loads(text)) == []
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_lockstep.json")
    with open(path, "w") as handle:
        handle.write(text + "\n")

    lock = bench.lockstep
    summary = (
        f"lockstep x{lock['variants']} ({lock['workload']}): "
        f"{lock['outcome']}, cost ratio {lock['cost_ratio']}x "
        f"({lock['lockstep']['wall_seconds']}s vs "
        f"{lock['single']['wall_seconds']}s single, "
        f"best of {lock['repeats']})"
    )
    save_artifact("lockstep_cost", summary)

    assert lock["outcome"] == "clean"
    assert lock["variants"] == 4
    # 4 variants actually ran: ~4x the simulated work of one.
    assert lock["lockstep"]["instructions"] > 3 * lock["single"]["instructions"]
    # The acceptance bar: amortized decode+bind keeps N=4 under 2.5x.
    assert lock["cost_ratio"] < 2.5, lock
