"""Section 6.2.4: webserver throughput decrease under full R2C.

Paper: 13% (nginx) / 12% (Apache) on the i9-9900K; 3-4% on the AMD
machines.  Reproduction target: a measurable throughput cost on every
machine, higher on the Intel presets than on the AMD presets (the
direction of the paper's split; our magnitude gap is smaller — see
EXPERIMENTS.md).
"""

from repro.eval.experiments import experiment_webserver
from repro.eval.report import render_webserver

from benchmarks.conftest import save_artifact


def test_webserver_throughput_decrease(run_once):
    data = run_once(experiment_webserver, seeds=(1, 2))
    save_artifact("webserver_throughput", render_webserver(data))

    for server, per_machine in data.items():
        amd = (per_machine["epyc-rome"] + per_machine["tr-3970x"]) / 2
        intel = (per_machine["i9-9900k"] + per_machine["xeon"]) / 2
        assert intel > amd, f"{server}: Intel should pay more than AMD"
        assert all(0 < pct < 40 for pct in per_machine.values()), server
