"""Section 6.3: scalability — compiling browser-scale software.

The paper compiles WebKit (4.5 MLoC) and Chromium (32 MLoC) and verifies
them with test suites and Speedometer.  The analogue: generate
progressively larger synthetic corpora, compile them under full R2C, and
verify the diversified binaries against the reference interpreter.

Reproduction target: compilation succeeds and verifies at every size, and
compile time scales roughly linearly (no super-linear blow-up that would
make browser-scale compilation infeasible).
"""

from repro.eval.experiments import experiment_scalability
from repro.eval.report import render_scalability

from benchmarks.conftest import save_artifact

SIZES = (200, 600, 1800)


def test_browser_scale_compilation(run_once):
    rows = run_once(experiment_scalability, sizes=SIZES)
    save_artifact("scalability_browser", render_scalability(rows))

    assert all(row["verified"] for row in rows)
    # Roughly linear compile-time scaling: 9x the functions should cost
    # well under 30x the time.
    small, large = rows[0], rows[-1]
    size_ratio = large["functions"] / small["functions"]
    time_ratio = large["compile_seconds"] / max(small["compile_seconds"], 1e-9)
    assert time_ratio < size_ratio * 3.5
    assert large["text_bytes"] > small["text_bytes"]
