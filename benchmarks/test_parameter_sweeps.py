"""Parameter sweeps: the trade-off curves behind R2C's knobs.

* BTRA count (Section 4.1 parameterizes it; Section 7.2.1 gives the
  security it buys): overhead grows with R, guessing probability falls
  as 1/(R+1).
* BTDP density (Section 7.2.3): overhead grows with B, the benign
  fraction H/(H+B) of the leaked heap cluster falls.
* Optimization level: better baseline code -> higher *relative* R2C cost
  (context for the paper's -O3 methodology).
"""

from repro.eval.experiments import (
    experiment_btdp_sweep,
    experiment_btra_sweep,
    experiment_opt_levels,
)
from repro.eval.report import render_btdp_sweep, render_btra_sweep, render_opt_levels

from benchmarks.conftest import save_artifact


def test_btra_count_tradeoff(run_once):
    data = run_once(experiment_btra_sweep)
    save_artifact("sweep_btra_count", render_btra_sweep(data))

    counts = sorted(data)
    overheads = [data[c]["overhead_pct"] for c in counts]
    # Overhead is monotone (within noise) in the BTRA count...
    assert overheads[-1] > overheads[0]
    assert all(b >= a - 1.0 for a, b in zip(overheads, overheads[1:]))
    # ...and the security knob follows the closed form.
    assert data[10]["guess_probability"] == 1 / 11
    assert data[20]["guess_probability"] < data[5]["guess_probability"]


def test_btdp_density_tradeoff(run_once):
    data = run_once(experiment_btdp_sweep)
    save_artifact("sweep_btdp_density", render_btdp_sweep(data))

    maxima = sorted(data)
    assert data[maxima[-1]]["overhead_pct"] >= data[0]["overhead_pct"]
    # More BTDPs -> smaller benign fraction of the heap cluster.
    fractions = [data[m]["benign_fraction"] for m in maxima]
    assert fractions[0] == 1.0  # no BTDPs, everything benign
    assert fractions[-1] < 0.6


def test_optimization_raises_relative_overhead(run_once):
    data = run_once(experiment_opt_levels)
    save_artifact("sweep_opt_levels", render_opt_levels(data))

    # Without redundancy, the optimizer has nothing to remove: levels tie.
    flat = data["redundancy=0"]
    assert abs(flat["O1"] - flat["O0"]) < 2.0
    # With redundancy, -O1 shrinks the per-call arithmetic and R2C's fixed
    # per-call cost looms larger.
    heavy = data["redundancy=25"]
    assert heavy["O1"] > heavy["O0"] + 3.0
