"""Figure 6: full-protection overhead per benchmark on four machines.

Paper: geometric-mean overhead 6.6-8.5%, highest on the Xeon; omnetpp is
the worst outlier (up to 21% there); lbm/xz are near zero; benchmarks with
high call density hurt most.

Reproduction target: the per-benchmark ordering, the near-zero floor for
lbm/xz, and the machine ordering (Xeon worst, Threadripper best).
Absolute magnitudes run ~1.5x the paper's because the synthetic functions
are smaller than real SPEC code (see EXPERIMENTS.md).
"""

from repro.eval.experiments import experiment_figure6
from repro.eval.report import render_figure6

from benchmarks.conftest import save_artifact


def test_figure6_full_protection(run_once):
    data = run_once(experiment_figure6, seeds=(1, 2))
    save_artifact("figure6_full_r2c", render_figure6(data))

    geomeans = data["geomean"]
    # Machine ordering: Xeon worst, Threadripper best (Section 6.2.4).
    assert geomeans["xeon"] == max(geomeans.values())
    assert geomeans["tr-3970x"] == min(geomeans.values())
    # Per-benchmark shape on the reference machine.
    epyc = {name: row["epyc-rome"] for name, row in data.items() if name != "geomean"}
    assert epyc["omnetpp"] == max(epyc.values())  # the paper's outlier
    assert epyc["lbm"] < 1.0  # near-zero floor
    assert epyc["xz"] < 4.0
    assert epyc["xalancbmk"] > epyc["mcf"]
    # Overhead exists everywhere protection is meaningful.
    assert all(v >= 0 for v in epyc.values())
