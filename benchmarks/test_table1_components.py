"""Table 1: per-component overheads (Push / AVX / BTDP / Prolog / Layout),
plus the offset-invariant-addressing measurement of Section 6.2.1.

Paper values (ratio to baseline):
    Push   max 1.21  geomean 1.06
    AVX    max 1.10  geomean 1.04
    BTDP   max 1.05  geomean 1.02
    Prolog max 1.06  geomean 1.02
    Layout max 1.02  geomean 1.00
    OIA    max 1.036 geomean 1.008

Reproduction target: the *ordering* (Push > AVX > BTDP ≥ Prolog > Layout)
and Layout ≈ 1.0.  Our OIA row sits at ~1.0 because the baseline codegen
is already frame-pointer-omitting (see EXPERIMENTS.md).
"""

from repro.eval.experiments import experiment_table1
from repro.eval.report import render_table1

from benchmarks.conftest import save_artifact


def test_table1_component_overheads(run_once):
    rows = run_once(experiment_table1, seeds=(1, 2))
    save_artifact("table1_components", render_table1(rows))

    # The paper's component ordering must hold.
    assert rows["Push"]["geomean"] > rows["AVX"]["geomean"] > 1.0
    assert rows["AVX"]["geomean"] > rows["BTDP"]["geomean"]
    assert rows["BTDP"]["geomean"] >= rows["Prolog"]["geomean"]
    assert rows["Layout"]["geomean"] < 1.02
    assert rows["OIA"]["geomean"] < 1.02
    # The push outlier (omnetpp at 1.21 in the paper) exists here too.
    assert rows["Push"]["max"] > 1.10
