"""Table 3 / Section 7.2: the defense-comparison matrix.

Every attack implementation runs against every modelled defense.  Paper
claims reproduced as assertions:

* the undiversified baseline falls to everything;
* code-only diversity (CodeArmor, TASR, Readactor) stops ROP-family
  attacks but NOT AOCR — the paper's motivating observation;
* kR^X's single return-address decoy is weaker than R2C's parameterized
  BTRAs against brute force;
* R2C stops (or detects) every attack class — including AOCR.
"""

from repro.eval.experiments import experiment_table3
from repro.eval.report import render_table3

from benchmarks.conftest import save_artifact


def _successes(matrix, defense, attack):
    return matrix[defense][attack]["success"]


def _total(matrix, defense, attack):
    return sum(matrix[defense][attack].values())


def test_table3_attack_defense_matrix(run_once):
    matrix = run_once(experiment_table3, trials=3)
    save_artifact("table3_defense_matrix", render_table3(matrix))

    attacks = list(next(iter(matrix.values())).keys())

    # Row "none": the monoculture falls to every attack, every time.
    for attack in attacks:
        assert _successes(matrix, "none", attack) == _total(matrix, "none", attack), attack

    # AOCR defeats every code-only defense (the paper's Section 1 claim).
    for defense in ("codearmor", "tasr", "readactor"):
        assert _successes(matrix, defense, "aocr") >= 2, defense
    # ...but those defenses do stop classic ROP.
    for defense in ("codearmor", "tasr", "readactor"):
        assert _successes(matrix, defense, "rop") == 0, defense

    # Execute-only text stops direct JIT-ROP wherever deployed.
    for defense in ("codearmor", "tasr", "readactor", "krx", "r2c"):
        assert _successes(matrix, defense, "jitrop") == 0, defense

    # StackArmor randomizes the stack but leaves code undiversified and
    # readable: code-reuse still succeeds.
    assert _successes(matrix, "stackarmor", "jitrop") >= 2

    # kR^X lacks heap-pointer protection: AOCR remains viable.
    assert _successes(matrix, "krx", "aocr") >= 1

    # Backward-edge CFI (shadow stack) stops every return hijack but is
    # blind to AOCR's forward-edge whole-function reuse (Section 8.2).
    assert _successes(matrix, "shadowstack", "rop") == 0
    assert _successes(matrix, "shadowstack", "blindrop") == 0
    assert _successes(matrix, "shadowstack", "pirop") == 0
    assert _successes(matrix, "shadowstack", "aocr") == _total(
        matrix, "shadowstack", "aocr"
    )

    # R2C: no attack class ever succeeds.
    for attack in attacks:
        assert _successes(matrix, "r2c", attack) == 0, attack

    # And R2C is *reactive*: the brute-force campaigns get detected.
    blind = matrix["r2c"]["blindrop"]
    assert blind["detected"] == _total(matrix, "r2c", "blindrop")

    # The Section 7.3 combination row (R2C x 2 variants in lockstep):
    # nothing succeeds, and cross-checking converts otherwise-silent
    # failures into first-class divergence detections.
    for attack in attacks:
        assert _successes(matrix, "r2c-mvee", attack) == 0, attack
    assert matrix["r2c-mvee"]["jitrop"]["diverged"] >= 1
    aocr = matrix["r2c-mvee"]["aocr"]
    assert aocr["detected"] + aocr["diverged"] == _total(matrix, "r2c-mvee", "aocr")
