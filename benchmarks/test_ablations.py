"""Ablation benches for the design choices DESIGN.md section 5 calls out.

Each ablation builds the deliberately weakened variant of an R2C design
decision and demonstrates the concrete attack the real design prevents —
turning the paper's design arguments (Sections 4.1, 5.1, 5.2, 7.3) into
executable evidence.
"""

import pytest

from repro.attacks import AttackOutcome, VictimSession, aocr_attack
from repro.core.config import R2CConfig
from repro.eval.harness import measure_config
from repro.eval.introspect import HookProbe, observe_call_races
from repro.rng import DiversityRng
from repro.workloads.spec import build_spec_benchmark

from benchmarks.conftest import save_artifact

PUSH_FULL = R2CConfig.full(seed=33, btra_mode="push")


# ---------------------------------------------------------------------------
# Ablation 1 — BTRA set stability (property B, Section 4.1).
# ---------------------------------------------------------------------------

def test_dynamic_btras_leak_the_ra_in_two_observations(run_once):
    """The paper: "just two observations suffice to identify the return
    address, as it is the only pointer remaining identical."  Model-level
    comparison of stable vs. per-invocation re-randomized BTRA sets."""

    def experiment():
        rng = DiversityRng(5).child("ablation-b")
        trials = 200
        r = 10
        dynamic_identified = 0
        stable_identified = 0
        for _ in range(trials):
            ra = rng.randint(1, 2**48)
            stable_decoys = {rng.randint(1, 2**48) for _ in range(r)}
            # Stable sets (R2C): two observations are identical.
            obs1 = stable_decoys | {ra}
            obs2 = set(obs1)
            if len(obs1 & obs2) == 1:
                stable_identified += 1
            # Dynamic sets (weakened): decoys redrawn per invocation.
            obs1 = {rng.randint(1, 2**48) for _ in range(r)} | {ra}
            obs2 = {rng.randint(1, 2**48) for _ in range(r)} | {ra}
            common = obs1 & obs2
            if common == {ra}:
                dynamic_identified += 1
        return stable_identified, dynamic_identified, trials

    stable, dynamic, trials = run_once(experiment)
    save_artifact(
        "ablation_dynamic_btras",
        "Two-observation intersection attack\n"
        f"  stable BTRA sets (R2C): RA isolated in {stable}/{trials} trials\n"
        f"  dynamic BTRA sets (weakened): RA isolated in {dynamic}/{trials} trials",
    )
    assert stable == 0
    assert dynamic >= trials * 0.95


# ---------------------------------------------------------------------------
# Ablation 2 — call-site vs. callee BTRA insertion (property C).
# ---------------------------------------------------------------------------

def test_callee_side_btras_fall_to_the_differencing_attack(run_once):
    """With per-callee BTRA sets, two call sites to the same callee differ
    only in their return addresses: the symmetric difference of two leaks
    is exactly the two RAs."""

    def experiment():
        weak = HookProbe(PUSH_FULL.replace(unsafe_callee_btras=True)).run()
        safe = HookProbe(PUSH_FULL).run()

        def diff(probe):
            site_a = set(probe.snapshots[0].pre) | {probe.snapshots[0].ra}
            site_b = set(probe.snapshots[3].pre) | {probe.snapshots[3].ra}
            return site_a ^ site_b, {probe.snapshots[0].ra, probe.snapshots[3].ra}

        return diff(weak), diff(safe)

    (weak_diff, weak_ras), (safe_diff, safe_ras) = run_once(experiment)
    save_artifact(
        "ablation_callee_btras",
        "Differencing attack across two call sites to one callee\n"
        f"  callee-side sets (weakened): symmetric difference has "
        f"{len(weak_diff)} entries -> exactly the two RAs: {weak_diff == weak_ras}\n"
        f"  call-site sets (R2C): symmetric difference has {len(safe_diff)} entries",
    )
    assert weak_diff == weak_ras  # the attack isolates both RAs
    assert len(safe_diff) > 2  # R2C buries them among differing BTRAs


# ---------------------------------------------------------------------------
# Ablation 3 — naive vs. hardened BTDP array placement (Figure 5).
# ---------------------------------------------------------------------------

def test_naive_btdp_array_lets_attackers_dodge_detection(run_once):
    """An AOCR attacker who can read the data section filters out every
    pointer that appears there.  Against the naive layout that removes all
    BTDPs; against the hardened layout it removes only decoys."""

    def experiment():
        naive = VictimSession(R2CConfig.full(seed=44).replace(btdp_hardened=False))
        hardened = VictimSession(R2CConfig.full(seed=44))
        out = {}
        for label, session, symbol in (
            ("naive", naive, "__btdp_array"),
            ("hardened", hardened, "__btdp_arr_ptr"),
        ):
            process, _ = session.spawn()
            info = process.r2c_runtime
            stack_btdps = set(info["btdp_values"])
            if label == "naive":
                base = process.symbols[symbol]
                visible = {
                    process.memory.read_word(base + 8 * i)
                    for i in range(session.config.btdp_array_len)
                }
            else:
                visible = set(info["decoy_values"])
            out[label] = len(stack_btdps - visible) / len(stack_btdps)
        return out

    surviving = run_once(experiment)
    save_artifact(
        "ablation_naive_btdp",
        "Fraction of stack BTDPs surviving a data-section filter\n"
        f"  naive array in .data: {surviving['naive']:.2f} (attacker dodges all traps)\n"
        f"  hardened (Figure 5):  {surviving['hardened']:.2f}",
    )
    assert surviving["naive"] == 0.0
    assert surviving["hardened"] == 1.0


# ---------------------------------------------------------------------------
# Ablation 4 — atomic vs. racy BTRA setup (Section 5.1).
# ---------------------------------------------------------------------------

def test_racy_setup_reopens_the_call_race_window(run_once):
    """Observing the stack immediately before and after the call: the
    atomic sequence shows zero changed words (the RA was pre-written);
    the racy variant exposes exactly the freshly-written RA slot."""

    def experiment():
        safe = observe_call_races(PUSH_FULL)
        racy = observe_call_races(PUSH_FULL.replace(unsafe_racy_btras=True))
        safe_changed = max((len(o["changed_slots"]) for o in safe), default=-1)
        racy_changed = [len(o["changed_slots"]) for o in racy]
        return safe_changed, racy_changed, len(safe)

    safe_changed, racy_changed, observed = run_once(experiment)
    save_artifact(
        "ablation_racy_btras",
        "Stack words changed across the call instruction "
        f"({observed} BTRA calls observed)\n"
        f"  atomic setup (R2C): max {safe_changed} changed words\n"
        f"  racy setup (weakened): {racy_changed} "
        "(the freshly-written RA slot; repeat invocations of a site show 0\n"
        "   because the stale RA from the previous call already matches)",
    )
    assert observed > 0
    assert safe_changed == 0
    # The first call through each racy site exposes exactly one changed
    # word — the return-address slot — and never more than one.
    assert racy_changed and racy_changed.count(1) >= 1
    assert all(n <= 1 for n in racy_changed)


# ---------------------------------------------------------------------------
# Ablation 5 — guard pages vs. plain pages for BTDPs (Section 4.2).
# ---------------------------------------------------------------------------

def test_unguarded_btdps_lose_reactivity(run_once):
    """Without permission revocation a BTDP dereference is silent: AOCR's
    heap walk proceeds undetected."""

    def experiment():
        tallies = {"guarded": 0, "unguarded": 0}
        trials = 8
        for trial in range(trials):
            guarded = VictimSession(R2CConfig.full(seed=800 + trial))
            if aocr_attack(guarded, attacker_seed=trial).outcome is AttackOutcome.DETECTED:
                tallies["guarded"] += 1
            unguarded = VictimSession(
                R2CConfig.full(seed=800 + trial).replace(unsafe_btdp_no_guard=True)
            )
            if aocr_attack(unguarded, attacker_seed=trial).outcome is AttackOutcome.DETECTED:
                tallies["unguarded"] += 1
        return tallies, trials

    tallies, trials = run_once(experiment)
    save_artifact(
        "ablation_btdp_guard",
        "AOCR campaigns detected by BTDPs\n"
        f"  guard pages (R2C): {tallies['guarded']}/{trials}\n"
        f"  plain pages (weakened): {tallies['unguarded']}/{trials}",
    )
    assert tallies["guarded"] >= trials // 2
    assert tallies["unguarded"] == 0


# ---------------------------------------------------------------------------
# Ablation 6 — cost of the Section 7.3 BTRA integrity check.
# ---------------------------------------------------------------------------

def test_integrity_check_cost_is_modest(run_once):
    """The proposed hardening ("checking a random subset of BTRAs for
    consistency after the return") adds a bounded extra cost on top of
    full R2C."""

    def experiment():
        source = lambda: build_spec_benchmark("omnetpp")
        base = measure_config(source, R2CConfig.baseline(), seeds=(1,))
        full = measure_config(source, PUSH_FULL, seeds=(1,))
        checked = measure_config(
            source, PUSH_FULL.replace(btra_integrity_check=True), seeds=(1,)
        )
        return base, full, checked

    base, full, checked = run_once(experiment)
    save_artifact(
        "ablation_integrity_check",
        "BTRA consistency check cost (omnetpp, push mode)\n"
        f"  full R2C:            {100 * (full / base - 1):.1f}% over baseline\n"
        f"  + integrity check:   {100 * (checked / base - 1):.1f}% over baseline",
    )
    assert checked >= full  # the check is not free...
    assert checked / full < 1.10  # ...but costs under 10% extra
