"""Table 2: median call frequencies across inputs.

Paper (billions of calls): nab 135.2 > mcf 38.7 > omnetpp 23.5 > leela
13.1 > xalancbmk 12.4 > deepsjeng 11.4 > imagick 10.4 > perlbench 9.4 >
gcc 7.5 > x264 3.4 > xz 3.3 > lbm 0.02.

Reproduction targets (the claims Section 7.1 actually draws from the
table): nab has by far the most calls, lbm by far the fewest, mcf is
call-heavy yet shows low overhead, and call frequency alone does not
predict overhead (perlbench has fewer calls than omnetpp).
"""

from repro.eval.experiments import experiment_table2
from repro.eval.report import render_table2

from benchmarks.conftest import save_artifact


def test_table2_call_frequencies(run_once):
    counts = run_once(experiment_table2, inputs=(1, 2, 3))
    save_artifact("table2_call_frequencies", render_table2(counts))

    assert counts["nab"] == max(counts.values())
    assert counts["lbm"] == min(counts.values())
    # mcf is in the top half by calls (38.7B in the paper) despite its
    # low overhead — the imperfect-correlation observation of Section 7.1.
    ranked = sorted(counts, key=counts.get, reverse=True)
    assert ranked.index("mcf") < 6
    assert counts["omnetpp"] > counts["perlbench"]
    assert counts["xz"] < counts["x264"] * 2
