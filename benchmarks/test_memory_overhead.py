"""Section 6.2.5: maxrss memory overhead.

Paper: 1-3% across SPEC; ~100% for the webservers, ~55% of which stems
from the BTDP guard-page allocations, the rest from BTRAs and binary-size
growth.

Reproduction target: the SPEC/webserver contrast (small fixed cost buried
under large working sets vs. dominating a small server's RSS) and the
BTDP allocations as the main driver of the webserver overhead.  Our BTDP
share runs higher than the paper's 55% because the synthetic server's
binary is far smaller than a real nginx build (see EXPERIMENTS.md).
"""

from repro.eval.experiments import experiment_memory
from repro.eval.report import render_memory

from benchmarks.conftest import save_artifact


def test_memory_overheads(run_once):
    data = run_once(experiment_memory)
    save_artifact("memory_overhead", render_memory(data))

    for name, pct in data["spec"].items():
        assert 0 <= pct < 12, f"SPEC {name}: {pct:.1f}%"
    for server, pct in data["webserver"].items():
        assert pct > 40, f"{server}: {pct:.1f}%"
        assert data["btdp_share"][server] > 50
    # The contrast itself: worst SPEC << best webserver.
    assert max(data["spec"].values()) < min(data["webserver"].values()) / 4
